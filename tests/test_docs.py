"""Documentation integrity: files exist, the API index regenerates."""

import importlib.util
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


class TestDocFiles:
    def test_required_documents_exist(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "docs/API.md"):
            path = ROOT / name
            assert path.exists(), f"missing {name}"
            assert len(path.read_text()) > 500

    def test_design_lists_every_bench(self):
        design = (ROOT / "DESIGN.md").read_text()
        for bench in sorted((ROOT / "benchmarks").glob("bench_e*.py")):
            assert bench.name in design, f"{bench.name} missing from DESIGN.md"

    def test_experiments_covers_every_bench(self):
        experiments = (ROOT / "EXPERIMENTS.md").read_text()
        for bench in sorted((ROOT / "benchmarks").glob("bench_e*.py")):
            assert bench.name in experiments, f"{bench.name} missing from EXPERIMENTS.md"


class TestApiIndex:
    def load_generator(self):
        spec = importlib.util.spec_from_file_location(
            "gen_api_docs", ROOT / "tools" / "gen_api_docs.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_builds_and_mentions_core_symbols(self):
        gen = self.load_generator()
        text = gen.build()
        for symbol in ("VanAttaArray", "simulate_link", "LinkBudget",
                       "ReaderReceiver", "SlottedAlohaInventory"):
            assert symbol in text, f"{symbol} missing from API index"

    def test_committed_index_is_current(self):
        gen = self.load_generator()
        assert (ROOT / "docs" / "API.md").read_text() == gen.build()
