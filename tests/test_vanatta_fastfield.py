"""Parity and behaviour tests for the batched array-factor engine.

The contract under test: the batched kernel (and every path layered on
it — monostatic collapse, chirp-Z cut, ensemble stack, RIS surfaces)
agrees with the per-pair reference loops to <= 1e-9 complex error, and
the scalar entry points delegate to it at batch size 1.
"""

import math

import numpy as np
import pytest

from repro.piezo.transducer import Transducer
from repro.vanatta.array import VanAttaArray
from repro.vanatta.fastfield import (
    ArrayFactorEngine,
    FASTFIELD_ENGINE_VERSION,
    element_phases_rad,
    ensemble_monostatic_db,
    pair_permutation,
    reference_planar_response,
    reference_response,
    wavenumber,
)
from repro.vanatta.planar import PlanarVanAttaArray
from repro.vanatta.polarity import PairingScheme
from repro.vanatta.retrodirective import monostatic_pattern_db, pattern, response
from repro.vanatta.ris import (
    PhaseSurface,
    quantization_loss_db,
    quantize_phases_rad,
    reader_steering_matrix,
    retro_phases_rad,
    spatial_dof,
    steering_phases_rad,
    sum_capacity_bits,
)
from repro.vanatta.tolerance import monte_carlo_gain

F = 18_500.0
C = 1500.0
TOL = 1e-9

SCHEMES = [
    PairingScheme.CROSS_POLARITY,
    PairingScheme.DIRECT,
    PairingScheme.RANDOM,
]


def linear_array(n=8, scheme=PairingScheme.CROSS_POLARITY):
    return VanAttaArray.uniform(
        n, frequency_hz=F, sound_speed=C, pairing=scheme
    )


class TestPrecompute:
    def test_pair_permutation_is_involution(self):
        arr = linear_array(9)
        perm = pair_permutation(arr.num_elements, arr.pairs)
        np.testing.assert_array_equal(perm[perm], np.arange(9))

    def test_pair_permutation_rejects_gaps(self):
        with pytest.raises(ValueError):
            pair_permutation(4, [(0, 3)])

    def test_element_phases_spread_to_both_members(self):
        phases = element_phases_rad(4, [(0, 3), (1, 2)], np.array([0.5, -0.5]))
        np.testing.assert_allclose(phases, [0.5, -0.5, -0.5, 0.5])

    def test_wavenumber_validates(self):
        assert wavenumber(F, C) == pytest.approx(2 * math.pi * F / C)
        with pytest.raises(ValueError):
            wavenumber(-1.0, C)
        with pytest.raises(ValueError):
            wavenumber(F, 0.0)

    def test_engine_version_stamped(self):
        assert FASTFIELD_ENGINE_VERSION >= 1


class TestLinearParity:
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("n", [1, 2, 5, 8])
    def test_batched_matches_reference_loop(self, scheme, n):
        arr = linear_array(n, scheme)
        engine = ArrayFactorEngine.from_linear(arr)
        rng = np.random.default_rng(20230)
        t_in = rng.uniform(-85.0, 85.0, size=40)
        t_out = rng.uniform(-85.0, 85.0, size=40)
        batched = engine.response_batch(F, t_in, t_out, C)
        looped = np.array(
            [
                reference_response(arr, F, float(a), float(b), C)
                for a, b in zip(t_in, t_out)
            ]
        )
        assert np.abs(batched - looped).max() <= TOL

    def test_frequency_batches(self):
        arr = linear_array(6)
        engine = ArrayFactorEngine.from_linear(arr)
        freqs = np.linspace(0.8 * F, 1.2 * F, 7)
        batched = engine.response_batch(freqs, 17.0, -4.0, C)
        looped = np.array(
            [reference_response(arr, float(f), 17.0, -4.0, C) for f in freqs]
        )
        assert np.abs(batched - looped).max() <= TOL

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_monostatic_collapse_matches_dense(self, scheme):
        engine = ArrayFactorEngine.from_linear(linear_array(16, scheme))
        thetas = np.linspace(-88.0, 88.0, 91)
        collapsed = engine.monostatic_batch(F, thetas, C)
        dense = engine.response_batch(F, thetas, thetas, C)
        assert np.abs(collapsed - dense).max() <= TOL

    def test_sub_batch_invariance(self):
        engine = ArrayFactorEngine.from_linear(linear_array(8))
        rng = np.random.default_rng(7)
        t_in = rng.uniform(-80.0, 80.0, size=24)
        t_out = rng.uniform(-80.0, 80.0, size=24)
        whole = engine.response_batch(F, t_in, t_out, C)
        parts = np.concatenate(
            [
                engine.response_batch(F, t_in[i : i + 5], t_out[i : i + 5], C)
                for i in range(0, 24, 5)
            ]
        )
        np.testing.assert_array_equal(whole, parts)

    def test_broadcast_grid_shape(self):
        engine = ArrayFactorEngine.from_linear(linear_array(4))
        freqs = np.linspace(0.9 * F, 1.1 * F, 3)[:, None]
        thetas = np.linspace(-30.0, 30.0, 5)[None, :]
        out = engine.response_batch(freqs, thetas, thetas)
        assert out.shape == (3, 5)

    def test_validation(self):
        engine = ArrayFactorEngine.from_linear(linear_array(4))
        with pytest.raises(ValueError):
            engine.response_batch(-F, 0.0, 0.0)
        with pytest.raises(ValueError):
            engine.response_batch(F, 0.0, 0.0, sound_speed=-C)
        with pytest.raises(ValueError):
            ArrayFactorEngine(
                rx_positions_m=np.zeros((3, 1)),
                tx_positions_m=np.zeros((2, 1)),
                weights=np.ones(3, dtype=complex),
                line_gain=1.0,
                element=Transducer(),
            )


class TestScalarDelegation:
    def test_response_equals_reference(self):
        arr = linear_array(8)
        for t_in, t_out in [(0.0, 0.0), (25.0, -40.0), (-60.0, 10.0)]:
            assert abs(
                response(arr, F, t_in, t_out, C)
                - reference_response(arr, F, t_in, t_out, C)
            ) <= TOL

    def test_pattern_sweep_equals_reference(self):
        arr = linear_array(6)
        thetas = np.linspace(-90.0, 90.0, 37)
        swept = pattern(arr, F, 20.0, thetas, C)
        looped = np.array(
            [reference_response(arr, F, 20.0, float(t), C) for t in thetas]
        )
        assert np.abs(np.asarray(swept) - looped).max() <= TOL

    def test_monostatic_pattern_db_flat_for_ideal_array(self):
        base = linear_array(4)
        arr = VanAttaArray(
            positions_m=base.positions_m,
            pairs=base.pairs,
            element=Transducer(elevation_rolloff_exponent=0.0),
            line_loss_db=0.0,
        )
        db = monostatic_pattern_db(arr, F, np.linspace(-80, 80, 33), C)
        np.testing.assert_allclose(db, 20.0 * math.log10(4), atol=1e-9)


class TestPlanarParity:
    def planar(self, nu=3, nw=2):
        return PlanarVanAttaArray.uniform(
            nu, nw, frequency_hz=F, sound_speed=C
        )

    def test_batched_matches_reference_loop(self):
        arr = self.planar()
        engine = ArrayFactorEngine.from_planar(arr)
        rng = np.random.default_rng(11)
        az_in, el_in, az_out, el_out = rng.uniform(-70.0, 70.0, size=(4, 20))
        batched = engine.planar_response_batch(
            F, az_in, el_in, az_out, el_out, C
        )
        looped = np.array(
            [
                reference_planar_response(
                    arr, F, float(a), float(b), float(c), float(d), C
                )
                for a, b, c, d in zip(az_in, el_in, az_out, el_out)
            ]
        )
        assert np.abs(batched - looped).max() <= TOL

    def test_monostatic_grid_matches_dense_diagonal(self):
        engine = ArrayFactorEngine.from_planar(self.planar(4, 4))
        az = np.linspace(-50.0, 50.0, 9)
        el = np.linspace(-30.0, 30.0, 5)
        grid = engine.planar_monostatic_grid_db(F, az, el, C)
        dense = 20.0 * np.log10(
            np.maximum(
                np.abs(
                    engine.planar_response_batch(
                        F, az[:, None], el[None, :],
                        az[:, None], el[None, :], C,
                    )
                ),
                1e-15,
            )
        )
        assert grid.shape == (9, 5)
        np.testing.assert_allclose(grid, dense, atol=1e-9)


class TestChirpZ:
    def test_czt_matches_dense_grid(self):
        engine = ArrayFactorEngine.from_linear(linear_array(16))
        u = np.linspace(-0.9, 0.9, 181)
        czt = engine.bistatic_cut_czt(F, 12.0, -0.9, u[1] - u[0], 181, C)
        thetas = np.degrees(np.arcsin(u))
        dense = engine.response_batch(F, 12.0, thetas, C)
        assert np.abs(czt - dense).max() <= TOL

    def test_czt_rejects_nonuniform_grid(self):
        positions = np.array([0.0, 0.04, 0.1])
        engine = ArrayFactorEngine.from_phase_surface(
            positions, np.zeros(3)
        )
        # A 1-D phase surface keeps D=1 but the spacing is irregular.
        with pytest.raises(ValueError):
            engine.bistatic_cut_czt(F, 0.0, -0.5, 0.01, 101, C)


class TestEnsemble:
    def test_ensemble_matches_per_instance_loop(self):
        rng = np.random.default_rng(3)
        base = linear_array(6)
        instances = []
        for _ in range(8):
            jitter = rng.normal(0.0, 1e-3, size=base.num_elements)
            instances.append(
                VanAttaArray(
                    positions_m=tuple(
                        np.asarray(base.positions_m) + jitter
                    ),
                    pairs=base.pairs,
                    element=base.element,
                    line_loss_db=base.line_loss_db,
                )
            )
        gains = ensemble_monostatic_db(instances, F, 15.0, C)
        singles = np.array(
            [
                20.0
                * math.log10(
                    max(abs(reference_response(a, F, 15.0, 15.0, C)), 1e-15)
                )
                for a in instances
            ]
        )
        np.testing.assert_allclose(gains, singles, atol=1e-9)

    def test_tolerance_monte_carlo_still_deterministic(self):
        arr = linear_array(4)
        a = monte_carlo_gain(
            arr, F, position_sigma_m=1e-3, instances=32, seed=9
        )
        b = monte_carlo_gain(
            arr, F, position_sigma_m=1e-3, instances=32, seed=9
        )
        assert (a.mean_gain_db, a.std_gain_db, a.worst_gain_db) == (
            b.mean_gain_db, b.std_gain_db, b.worst_gain_db
        )


class TestPhaseSurface:
    def omni_surface(self, num_u=4, num_w=4, **kwargs):
        return PhaseSurface.uniform(
            num_u=num_u,
            num_w=num_w,
            frequency_hz=F,
            element=Transducer(elevation_rolloff_exponent=0.0),
            **kwargs,
        )

    def test_retro_programmed_surface_hits_ideal_gain(self):
        surface = self.omni_surface()
        lossless = PhaseSurface(
            positions_m=surface.positions_m,
            phases_rad=surface.phases_rad,
            element=surface.element,
            reflection_loss_db=0.0,
        ).retro(F, 20.0, -10.0)
        gain = float(lossless.monostatic_gain_db(F, 20.0, -10.0))
        assert gain == pytest.approx(20.0 * math.log10(16), abs=1e-9)

    def test_retro_only_holds_at_programmed_angle(self):
        # Note -30 deg would be a round-trip grating lobe of the lambda/2
        # grid (the monostatic sweep sees doubled spatial frequency), so
        # probe broadside, where the codebook is maximally incoherent.
        surface = self.omni_surface().retro(F, 30.0, 0.0)
        at = float(surface.monostatic_gain_db(F, 30.0, 0.0))
        away = float(surface.monostatic_gain_db(F, 0.0, 0.0))
        assert at > away + 10.0

    def test_steering_reciprocity(self):
        phases = steering_phases_rad(
            np.array([[0.0, 0.0], [0.04, 0.0]]), F, 10.0, 5.0, -20.0, 0.0
        )
        swapped = steering_phases_rad(
            np.array([[0.0, 0.0], [0.04, 0.0]]), F, -20.0, 0.0, 10.0, 5.0
        )
        np.testing.assert_allclose(phases, swapped, atol=1e-12)
        retro = retro_phases_rad(
            np.array([[0.0, 0.0], [0.04, 0.0]]), F, 10.0, 5.0
        )
        assert retro.shape == (2,)

    def test_quantized_surface_loses_at_most_theory_bound(self):
        continuous = PhaseSurface(
            positions_m=self.omni_surface(8, 8).positions_m,
            phases_rad=np.zeros(64),
            element=Transducer(elevation_rolloff_exponent=0.0),
            reflection_loss_db=0.0,
        )
        exact = continuous.retro(F, 35.0, 10.0)
        coarse = PhaseSurface(
            positions_m=continuous.positions_m,
            phases_rad=continuous.phases_rad,
            element=continuous.element,
            reflection_loss_db=0.0,
            phase_bits=2,
        ).retro(F, 35.0, 10.0)
        drop = float(exact.monostatic_gain_db(F, 35.0, 10.0)) - float(
            coarse.monostatic_gain_db(F, 35.0, 10.0)
        )
        assert 0.0 <= drop <= quantization_loss_db(2) + 0.5

    def test_quantize_phases_snaps_to_levels(self):
        q = quantize_phases_rad(np.array([0.1, 1.0, 3.0]), bits=2)
        step = math.pi / 2
        np.testing.assert_allclose(q / step, np.round(q / step), atol=1e-12)
        with pytest.raises(ValueError):
            quantize_phases_rad(np.zeros(3), bits=0)

    def test_quantization_loss_decreases_with_bits(self):
        losses = [quantization_loss_db(b) for b in (1, 2, 3, 4)]
        assert all(b < a for a, b in zip(losses, losses[1:]))
        assert losses[0] == pytest.approx(3.92, abs=0.01)


class TestMultiReader:
    READERS = [(-35.0, -10.0), (-10.0, 5.0), (15.0, -5.0), (40.0, 10.0)]

    def steering(self, num_u, num_w):
        surface = PhaseSurface.uniform(
            num_u=num_u, num_w=num_w, frequency_hz=F
        )
        return reader_steering_matrix(surface.positions_m, F, self.READERS)

    def test_rows_are_unit_norm(self):
        s = self.steering(4, 4)
        np.testing.assert_allclose(
            np.linalg.norm(s, axis=1), np.ones(4), atol=1e-12
        )

    def test_dof_grows_with_aperture_and_caps_at_readers(self):
        dofs = [spatial_dof(self.steering(n, n)) for n in (1, 4, 16)]
        assert all(b >= a for a, b in zip(dofs, dofs[1:]))
        assert dofs[0] == 1
        assert dofs[-1] == len(self.READERS)

    def test_sum_capacity_monotone_in_snr(self):
        s = self.steering(8, 8)
        caps = [sum_capacity_bits(s, snr_db=x) for x in (0.0, 10.0, 20.0)]
        assert all(b > a for a, b in zip(caps, caps[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            reader_steering_matrix(np.zeros((4, 2)), F, [])
        with pytest.raises(ValueError):
            spatial_dof(self.steering(2, 2), rel_threshold_db=0.0)
