"""Tests for water properties and the Mackenzie sound-speed model."""

import pytest
from hypothesis import given, strategies as st

from repro.acoustics.constants import WaterProperties, sound_speed_mackenzie


class TestMackenzie:
    def test_reference_point(self):
        # Mackenzie's published check value: T=25C, S=35, D=1000m -> 1550.744 m/s.
        assert sound_speed_mackenzie(25.0, 35.0, 1000.0) == pytest.approx(
            1550.744, abs=0.5
        )

    def test_fresh_surface_water(self):
        # Fresh water at 20C is ~1482 m/s (textbook).
        assert sound_speed_mackenzie(20.0, 0.0, 0.0) == pytest.approx(1447, abs=40)

    def test_increases_with_temperature(self):
        speeds = [sound_speed_mackenzie(t, 35.0, 10.0) for t in (5, 10, 15, 20, 25)]
        assert speeds == sorted(speeds)

    def test_increases_with_salinity(self):
        speeds = [sound_speed_mackenzie(15.0, s, 10.0) for s in (0, 10, 20, 30, 35)]
        assert speeds == sorted(speeds)

    def test_increases_with_depth(self):
        speeds = [sound_speed_mackenzie(15.0, 35.0, d) for d in (0, 100, 500, 1000)]
        assert speeds == sorted(speeds)

    @given(
        st.floats(min_value=2.0, max_value=30.0),
        st.floats(min_value=0.0, max_value=40.0),
        st.floats(min_value=0.0, max_value=100.0),
    )
    def test_plausible_range(self, t, s, d):
        c = sound_speed_mackenzie(t, s, d)
        assert 1400.0 < c < 1600.0


class TestWaterProperties:
    def test_river_preset_is_fresh(self):
        river = WaterProperties.river()
        assert river.salinity_ppt < 1.0
        assert river.density_kg_m3 == pytest.approx(1000.0)

    def test_ocean_preset_is_salty(self):
        ocean = WaterProperties.ocean()
        assert ocean.salinity_ppt > 30.0
        assert ocean.density_kg_m3 > 1020.0

    def test_sound_speed_property_delegates(self):
        w = WaterProperties(temperature_c=10.0, salinity_ppt=35.0, depth_m=50.0)
        assert w.sound_speed == pytest.approx(
            sound_speed_mackenzie(10.0, 35.0, 50.0)
        )

    def test_wavelength_at_vab_carrier(self):
        w = WaterProperties.ocean()
        lam = w.wavelength(18_500.0)
        assert lam == pytest.approx(0.08, abs=0.01)

    def test_wavelength_rejects_bad_frequency(self):
        with pytest.raises(ValueError):
            WaterProperties.ocean().wavelength(0.0)

    def test_frozen(self):
        w = WaterProperties.river()
        with pytest.raises(AttributeError):
            w.temperature_c = 99.0
