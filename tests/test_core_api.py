"""Tests for the public facade."""

import numpy as np
import pytest

from repro.core import (
    LinkBudget,
    LinkReport,
    Reader,
    Scenario,
    VanAttaNode,
    default_vab_budget,
    simulate_link,
)
from repro.phy.frame import build_frame
from repro.vanatta.switching import chips_to_waveform


class TestReader:
    def test_chains_share_scenario_rates(self):
        sc = Scenario.river()
        reader = Reader(scenario=sc)
        assert reader.tx.fs == sc.fs
        assert reader.rx.fs == sc.fs
        assert reader.tx.carrier_hz == sc.carrier_hz

    def test_loopback_through_reader(self):
        reader = Reader()
        node = VanAttaNode()
        chips = np.concatenate(
            [np.zeros(20, np.int64), build_frame(3, b"ping"), np.zeros(5, np.int64)]
        )
        mod = chips_to_waveform(chips, reader.scenario.samples_per_chip, node.switch)
        record = 50.0 + mod.astype(complex)  # leak + reflection
        result = reader.demodulate(record)
        assert result.success
        assert result.frame.payload == b"ping"

    def test_carrier(self):
        reader = Reader()
        assert len(reader.carrier(0.1)) == int(0.1 * reader.scenario.fs)


class TestSimulateLink:
    def test_analytic_only(self):
        report = simulate_link(Scenario.river(range_m=100.0), trials=0)
        assert report.point is None
        assert report.ber == report.predicted_ber
        assert report.frame_success_rate == 0.0

    def test_with_trials(self):
        report = simulate_link(Scenario.river(range_m=60.0), trials=3, seed=1)
        assert report.point is not None
        assert report.frame_success_rate == 1.0
        assert report.ber == 0.0

    def test_prediction_fields_populated(self):
        report = simulate_link(Scenario.river(range_m=150.0), trials=0)
        assert report.predicted_snr_db > 0.0
        assert 0.0 <= report.predicted_ber <= 0.5
        assert report.range_m == pytest.approx(150.0)

    def test_custom_node_used(self):
        node = VanAttaNode(node_id=9)
        report = simulate_link(Scenario.river(range_m=40.0), node=node, trials=2)
        assert report.frame_success_rate == 1.0


class TestDefaultBudget:
    def test_uses_scenario_incidence(self):
        straight = default_vab_budget(Scenario.river())
        rotated = default_vab_budget(Scenario.river().with_node_rotation(50.0))
        assert rotated.array_gain_db < straight.array_gain_db

    def test_explicit_theta_override(self):
        b0 = default_vab_budget(Scenario.river(), theta_deg=0.0)
        b50 = default_vab_budget(Scenario.river(), theta_deg=50.0)
        assert b50.array_gain_db < b0.array_gain_db

    def test_is_linkbudget(self):
        assert isinstance(default_vab_budget(Scenario.river()), LinkBudget)

    def test_report_type(self):
        assert isinstance(simulate_link(Scenario.river(), trials=0), LinkReport)
