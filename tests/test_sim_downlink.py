"""Tests for the waveform-level downlink path."""

import numpy as np
import pytest

from repro.core import Scenario
from repro.link.commands import Command
from repro.sim.downlink import simulate_downlink


class TestDownlinkDelivery:
    def test_clean_delivery_close(self):
        result = simulate_downlink(
            Scenario.river(range_m=50.0),
            Command.query(3),
            rng=np.random.default_rng(0),
        )
        assert result.delivered
        assert result.decoded == Command.query(3)
        assert result.envelope_contrast > 10.0

    def test_delivery_at_operating_range(self):
        # Commands must reach the node wherever the uplink works (300 m).
        result = simulate_downlink(
            Scenario.river(range_m=300.0),
            Command.ack(77),
            rng=np.random.default_rng(1),
        )
        assert result.delivered

    def test_all_opcodes_deliver(self):
        for i, cmd in enumerate(
            (Command.query(2), Command.query_rep(), Command.ack(3),
             Command.select(9), Command.sleep(1))
        ):
            result = simulate_downlink(
                Scenario.river(range_m=100.0), cmd,
                rng=np.random.default_rng(10 + i),
            )
            assert result.delivered, f"{cmd} lost"

    def test_extreme_range_fails(self):
        # Salt-water absorption (~2.7 dB/km each way) buries the envelope
        # tens of kilometres out.
        result = simulate_downlink(
            Scenario.ocean(range_m=30_000.0),
            Command.query(3),
            rng=np.random.default_rng(2),
        )
        assert not result.delivered

    def test_ocean_delivery(self):
        result = simulate_downlink(
            Scenario.ocean(range_m=150.0, sea_state=3),
            Command.query(4),
            rng=np.random.default_rng(3),
        )
        assert result.delivered

    def test_multipath_isi_needs_slower_pie(self):
        # Full image-method channel: surface/bottom echoes smear the PIE
        # gaps. The default 2 ms tari fails; doubling the intervals rides
        # over the delay spread — the trade PIE makes underwater.
        from repro.phy.downlink import PIEConfig

        sc = Scenario(name="multipath-downlink")  # default: 2 bounces
        fast = simulate_downlink(
            sc, Command.select(5), rng=np.random.default_rng(4)
        )
        slow = simulate_downlink(
            sc, Command.select(5),
            pie=PIEConfig(tari_s=4e-3, low_s=2e-3),
            rng=np.random.default_rng(4),
        )
        assert not fast.delivered
        assert slow.delivered

    def test_noise_free_is_deterministic(self):
        sc = Scenario.river(range_m=200.0)
        r1 = simulate_downlink(sc, Command.ack(1), include_noise=False)
        r2 = simulate_downlink(sc, Command.ack(1), include_noise=False)
        assert r1 == r2

    def test_incident_level_tracks_range(self):
        near = simulate_downlink(
            Scenario.river(range_m=20.0), Command.query(1),
            rng=np.random.default_rng(5),
        )
        far = simulate_downlink(
            Scenario.river(range_m=320.0), Command.query(1),
            rng=np.random.default_rng(5),
        )
        assert near.incident_level_db > far.incident_level_db + 20.0
