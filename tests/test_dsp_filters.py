"""Tests for FIR design and the DC blocker."""

import numpy as np
import pytest

from repro.dsp.filters import (
    bandpass_fir,
    dc_block,
    dc_block_fast,
    fir_filter,
    lowpass_fir,
    moving_average,
)


def tone(freq, fs, n=4096):
    t = np.arange(n) / fs
    return np.exp(2j * np.pi * freq * t)


def gain_at(taps, freq, fs):
    x = tone(freq, fs)
    y = fir_filter(x, taps)
    # Avoid edges where the filter is still filling.
    mid = slice(len(taps), len(x) - len(taps))
    return np.abs(y[mid]).mean()


class TestLowpass:
    def test_unit_dc_gain(self):
        taps = lowpass_fir(1000.0, 8000.0)
        assert taps.sum() == pytest.approx(1.0)

    def test_passband_and_stopband(self):
        fs = 8000.0
        taps = lowpass_fir(1000.0, fs, num_taps=101)
        assert gain_at(taps, 100.0, fs) == pytest.approx(1.0, abs=0.02)
        assert gain_at(taps, 3500.0, fs) < 0.01

    def test_even_taps_promoted_to_odd(self):
        taps = lowpass_fir(1000.0, 8000.0, num_taps=100)
        assert len(taps) % 2 == 1

    def test_rejects_bad_cutoff(self):
        with pytest.raises(ValueError):
            lowpass_fir(5000.0, 8000.0)
        with pytest.raises(ValueError):
            lowpass_fir(0.0, 8000.0)

    def test_rejects_tiny_filter(self):
        with pytest.raises(ValueError):
            lowpass_fir(100.0, 8000.0, num_taps=2)


class TestBandpass:
    def test_band_shape(self):
        fs = 16_000.0
        taps = bandpass_fir(2000.0, 4000.0, fs, num_taps=201)
        assert gain_at(taps, 3000.0, fs) == pytest.approx(1.0, abs=0.05)
        assert gain_at(taps, 500.0, fs) < 0.02
        assert gain_at(taps, 7000.0, fs) < 0.02

    def test_rejects_inverted_band(self):
        with pytest.raises(ValueError):
            bandpass_fir(4000.0, 2000.0, 16_000.0)


class TestFirFilter:
    def test_group_delay_compensated(self):
        taps = lowpass_fir(1000.0, 8000.0, num_taps=31)
        x = np.zeros(64)
        x[32] = 1.0
        y = fir_filter(x, taps)
        assert int(np.argmax(np.abs(y))) == 32

    def test_same_length(self):
        taps = lowpass_fir(500.0, 8000.0)
        x = np.random.default_rng(0).standard_normal(200)
        assert len(fir_filter(x, taps)) == 200


class TestMovingAverage:
    def test_flat_input_unchanged(self):
        x = np.ones(50)
        y = moving_average(x, 5)
        assert np.allclose(y[5:45], 1.0)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            moving_average(np.ones(10), 0)


class TestDCBlock:
    def test_removes_constant(self):
        x = np.full(2000, 3.0 + 1.0j)
        y = dc_block(x, alpha=0.99)
        assert abs(y[-1]) < 1e-3

    def test_passes_fast_variation(self):
        fs = 8000.0
        x = tone(1000.0, fs, n=2000)
        y = dc_block(x, alpha=0.99)
        assert np.abs(y[500:]).mean() == pytest.approx(1.0, abs=0.05)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            dc_block(np.ones(4), alpha=1.5)

    def test_fast_matches_reference(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal(300) + 1j * rng.standard_normal(300) + 2.0
        slow = dc_block(x, alpha=0.97)
        fast = dc_block_fast(x, alpha=0.97)
        np.testing.assert_allclose(fast, slow, rtol=1e-8, atol=1e-10)

    def test_fast_matches_reference_across_blocks(self):
        # Longer than the internal 4096-sample block to cover the carry.
        rng = np.random.default_rng(2)
        x = rng.standard_normal(9000) + 0.5
        slow = dc_block(x, alpha=0.995)
        fast = dc_block_fast(x, alpha=0.995)
        np.testing.assert_allclose(fast, slow, rtol=1e-6, atol=1e-8)

    def test_real_input_stays_real(self):
        x = np.ones(100)
        assert not np.iscomplexobj(dc_block(x))
        assert not np.iscomplexobj(dc_block_fast(x))

    def test_empty_input(self):
        assert len(dc_block_fast(np.zeros(0))) == 0
