"""Tests for channel estimation, rake combining, and the chip DFE."""

import numpy as np
import pytest

from repro.dsp.noisegen import white_noise
from repro.phy.rake import ChannelEstimate, estimate_channel, rake_combine
from repro.phy.receiver import ReaderReceiver

from tests.test_phy_receiver import CHIP_RATE, FS, SPS, loopback_record


def two_tap_record(
    echo_delay_samples=24,
    echo_gain=0.7 + 0.0j,
    payload=b"rake me",
    noise_power=0.0,
    seed=0,
    phase=0.0,
):
    """A record that arrives twice: main path plus one echo."""
    base = loopback_record(
        payload=payload, carrier_leak=0.0, noise_power=0.0, phase=phase, seed=seed
    )
    record = base.copy()
    record[echo_delay_samples:] += echo_gain * base[:-echo_delay_samples]
    record = record + 10.0  # static carrier leak
    if noise_power > 0:
        record = record + white_noise(
            len(record), noise_power, np.random.default_rng(seed)
        )
    return record


class TestChannelEstimation:
    def test_single_path_single_tap(self):
        rx = ReaderReceiver(fs=FS, chip_rate=CHIP_RATE)
        centred = rx.suppress_carrier(loopback_record(seed=1, noise_power=0.001))
        det = rx.find_preamble(centred)
        est = estimate_channel(centred, det, SPS)
        assert est.active_taps == 1
        assert abs(est.taps[0]) > 0

    def test_echo_tap_found_at_right_delay(self):
        delay = 24
        rx = ReaderReceiver(fs=FS, chip_rate=CHIP_RATE)
        centred = rx.suppress_carrier(two_tap_record(echo_delay_samples=delay))
        det = rx.find_preamble(centred)
        est = estimate_channel(centred, det, SPS, max_taps=32)
        nz = np.flatnonzero(est.taps)
        assert 0 in nz
        assert any(abs(int(k) - delay) <= 1 for k in nz)

    def test_echo_gain_roughly_recovered(self):
        rx = ReaderReceiver(fs=FS, chip_rate=CHIP_RATE)
        gain = 0.6 * np.exp(1j * 0.8)
        centred = rx.suppress_carrier(
            two_tap_record(echo_delay_samples=24, echo_gain=gain)
        )
        det = rx.find_preamble(centred)
        est = estimate_channel(centred, det, SPS, max_taps=32)
        ratio = est.taps[24] / est.taps[0]
        # Data leakage into the correlation window biases the estimate;
        # the DFE only needs the right ballpark (magnitude within ~40%,
        # phase within ~0.5 rad) to converge.
        assert abs(ratio) == pytest.approx(0.6, abs=0.25)
        assert np.angle(ratio) == pytest.approx(0.8, abs=0.5)

    def test_gate_zeroes_noise_taps(self):
        rx = ReaderReceiver(fs=FS, chip_rate=CHIP_RATE)
        centred = rx.suppress_carrier(loopback_record(seed=2, noise_power=0.01))
        det = rx.find_preamble(centred)
        est = estimate_channel(centred, det, SPS, max_taps=16, gate=0.4)
        assert est.active_taps <= 2

    def test_delay_spread(self):
        taps = np.zeros(8, complex)
        taps[0] = 1.0
        taps[5] = 0.5
        est = ChannelEstimate(taps=taps, noise_floor=0.1)
        assert est.delay_spread_samples() == 5
        assert est.active_taps == 2


class TestRakeCombine:
    def test_identity_for_single_unit_tap(self):
        taps = np.zeros(4, complex)
        taps[0] = 1.0
        x = np.arange(10, dtype=complex)
        np.testing.assert_allclose(
            rake_combine(x, ChannelEstimate(taps, 0.0)), x
        )

    def test_zero_channel_passthrough(self):
        x = np.arange(5, dtype=complex)
        est = ChannelEstimate(np.zeros(4, complex), 0.0)
        np.testing.assert_allclose(rake_combine(x, est), x)

    def test_two_tap_mrc_math(self):
        """MRC aligns and conjugate-weights the echo copy."""
        taps = np.zeros(4, complex)
        taps[0] = 1.0
        taps[2] = 0.5j
        x = np.array([1.0, 0.0, 0.5j, 0.0, 0.0, 0.0], dtype=complex)
        y = rake_combine(x, ChannelEstimate(taps, 0.0))
        # y[0] = (x[0] + conj(0.5j) x[2]) / 1.25 = (1 + 0.25) / 1.25 = 1
        assert y[0] == pytest.approx(1.0)

    def test_rake_harmless_on_clean_channel(self):
        record = loopback_record(payload=b"clean", seed=6, noise_power=0.005)
        raked = ReaderReceiver(fs=FS, chip_rate=CHIP_RATE, rake_taps=16)
        result = raked.demodulate(record)
        assert result.success
        assert result.frame.payload == b"clean"


class TestDecisionFeedbackEqualizer:
    """For unspread OOK the dominant multipath impairment is inter-chip
    interference; the DFE cancels it from past decisions."""

    def cases(self):
        return [
            (0.7 + 0.0j, 24, 0.01, 4),
            (0.6 + 0.3j, 16, 0.01, 5),
            (-0.8 + 0.0j, 32, 0.02, 6),
        ]

    def test_dfe_rescues_isi_limited_frames(self):
        for echo, delay, noise, seed in self.cases():
            record = two_tap_record(
                echo_delay_samples=delay, echo_gain=echo,
                noise_power=noise, seed=seed,
            )
            plain = ReaderReceiver(fs=FS, chip_rate=CHIP_RATE).demodulate(record)
            dfe = ReaderReceiver(
                fs=FS, chip_rate=CHIP_RATE, equalizer_taps=48
            ).demodulate(record)
            assert not plain.success, f"plain unexpectedly fine for {echo}"
            assert dfe.success, f"DFE failed for {echo}"

    def test_dfe_improves_eye_snr(self):
        for echo, delay, noise, seed in self.cases():
            record = two_tap_record(
                echo_delay_samples=delay, echo_gain=echo,
                noise_power=noise, seed=seed,
            )
            plain = ReaderReceiver(fs=FS, chip_rate=CHIP_RATE).demodulate(record)
            dfe = ReaderReceiver(
                fs=FS, chip_rate=CHIP_RATE, equalizer_taps=48
            ).demodulate(record)
            assert dfe.snr_db > plain.snr_db + 1.0

    def test_dfe_harmless_on_clean_channel(self):
        record = loopback_record(payload=b"no isi here", seed=7, noise_power=0.005)
        dfe = ReaderReceiver(fs=FS, chip_rate=CHIP_RATE, equalizer_taps=32)
        result = dfe.demodulate(record)
        assert result.success
        assert result.frame.payload == b"no isi here"

    def test_dfe_with_phase_rotation(self):
        record = two_tap_record(
            echo_delay_samples=24, echo_gain=0.7 + 0j,
            noise_power=0.005, seed=8, phase=1.2,
        )
        dfe = ReaderReceiver(fs=FS, chip_rate=CHIP_RATE, equalizer_taps=48)
        assert dfe.demodulate(record).success

    def test_dfe_payload_integrity(self):
        record = two_tap_record(
            echo_delay_samples=32, echo_gain=-0.8 + 0j,
            payload=b"deep multipath!!", noise_power=0.01, seed=9,
        )
        dfe = ReaderReceiver(fs=FS, chip_rate=CHIP_RATE, equalizer_taps=48)
        result = dfe.demodulate(record)
        assert result.success
        assert result.frame.payload == b"deep multipath!!"
