"""Tests for the reader receive chain (transmitter + receiver loopback)."""

import math

import numpy as np
import pytest

from repro.dsp.noisegen import white_noise
from repro.phy.frame import FrameConfig, build_frame
from repro.phy.receiver import DemodResult, ReaderReceiver, _eye_snr_db
from repro.phy.transmitter import ReaderTransmitter
from repro.vanatta.switching import ModulationSwitch, chips_to_waveform

FS = 16_000.0
CHIP_RATE = 2_000.0
SPS = int(FS / CHIP_RATE)


def loopback_record(
    payload=b"hello",
    node_id=5,
    amplitude=1.0,
    carrier_leak=10.0,
    noise_power=0.0,
    phase=0.0,
    idle_chips=20,
    seed=0,
):
    """Synthesise a received record: leak + modulated reflection + noise."""
    cfg = FrameConfig()
    chips = build_frame(node_id, payload, cfg)
    all_chips = np.concatenate(
        [np.zeros(idle_chips, np.int64), chips, np.zeros(8, np.int64)]
    )
    mod = chips_to_waveform(all_chips, SPS, ModulationSwitch())
    signal = amplitude * mod.astype(complex) * np.exp(1j * phase)
    record = signal + carrier_leak
    if noise_power > 0:
        record = record + white_noise(len(record), noise_power, np.random.default_rng(seed))
    return record


class TestLoopback:
    def test_clean_decode(self):
        rx = ReaderReceiver(fs=FS, chip_rate=CHIP_RATE)
        result = rx.demodulate(loopback_record())
        assert result.success
        assert result.frame.node_id == 5
        assert result.frame.payload == b"hello"

    def test_decode_with_phase_rotation(self):
        rx = ReaderReceiver(fs=FS, chip_rate=CHIP_RATE)
        for phase in (0.5, 1.5, 3.0, -2.0):
            result = rx.demodulate(loopback_record(phase=phase))
            assert result.success, f"failed at phase {phase}"

    def test_decode_under_huge_carrier_leak(self):
        # 60 dB of static carrier above the data: stage 1 must remove it.
        rx = ReaderReceiver(fs=FS, chip_rate=CHIP_RATE)
        result = rx.demodulate(loopback_record(amplitude=1.0, carrier_leak=1000.0))
        assert result.success

    def test_decode_in_moderate_noise(self):
        rx = ReaderReceiver(fs=FS, chip_rate=CHIP_RATE)
        result = rx.demodulate(loopback_record(noise_power=0.02, seed=3))
        assert result.success

    def test_fails_cleanly_in_pure_noise(self):
        rx = ReaderReceiver(fs=FS, chip_rate=CHIP_RATE)
        record = white_noise(8000, 1.0, np.random.default_rng(4))
        result = rx.demodulate(record)
        assert not result.success
        assert result.detection is None
        assert result.snr_db == -math.inf

    def test_snr_estimate_tracks_noise(self):
        rx = ReaderReceiver(fs=FS, chip_rate=CHIP_RATE)
        quiet = rx.demodulate(loopback_record(noise_power=0.001, seed=5))
        loud = rx.demodulate(loopback_record(noise_power=0.05, seed=5))
        assert quiet.snr_db > loud.snr_db

    def test_long_payload(self):
        rx = ReaderReceiver(fs=FS, chip_rate=CHIP_RATE)
        payload = bytes(range(64))
        result = rx.demodulate(loopback_record(payload=payload))
        assert result.success
        assert result.frame.payload == payload

    def test_small_amplitude_scale_invariance(self):
        rx = ReaderReceiver(fs=FS, chip_rate=CHIP_RATE)
        result = rx.demodulate(loopback_record(amplitude=1e-5, carrier_leak=1e-3))
        assert result.success


class TestStages:
    def test_suppress_carrier_removes_mean(self):
        rx = ReaderReceiver(fs=FS, chip_rate=CHIP_RATE)
        record = np.full(4000, 7.0 + 2.0j)
        out = rx.suppress_carrier(record)
        assert np.abs(out[1000:]).max() < 1e-6

    def test_sps_computed(self):
        assert ReaderReceiver(fs=FS, chip_rate=CHIP_RATE).sps == 8

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            ReaderReceiver(fs=16_000.0, chip_rate=3_000.0)


class TestEyeSnr:
    def test_clean_eye_is_high(self):
        soft = np.tile([1.0, -1.0], 50) + 0.001 * np.random.default_rng(0).standard_normal(100)
        assert _eye_snr_db(soft) > 30.0

    def test_too_few_values(self):
        assert _eye_snr_db(np.array([1.0, -1.0])) == -math.inf


class TestTransmitter:
    def test_carrier_constant(self):
        tx = ReaderTransmitter(fs=FS)
        c = tx.carrier(0.01)
        assert len(c) == 160
        assert np.all(c == 1.0 + 0j)

    def test_downlink_gates_carrier(self):
        tx = ReaderTransmitter(fs=FS)
        wave = tx.downlink([1, 0, 1])
        assert set(np.unique(wave.real)) <= {0.0, 1.0}
        assert wave.real.min() == 0.0

    def test_query_waveform_concatenates(self):
        tx = ReaderTransmitter(fs=FS)
        q = tx.query_waveform([1, 0], listen_duration_s=0.05)
        assert len(q) == len(tx.downlink([1, 0])) + len(tx.carrier(0.05))
        # Listen window is pure carrier.
        assert np.all(q[-10:] == 1.0 + 0j)

    def test_validation(self):
        with pytest.raises(ValueError):
            ReaderTransmitter(carrier_hz=0.0)
        with pytest.raises(ValueError):
            ReaderTransmitter().carrier(-1.0)
