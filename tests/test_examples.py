"""Every example must run clean: the documentation that can't go stale."""

import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((ROOT / "examples").glob("*.py"))


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(example):
    result = subprocess.run(
        [sys.executable, str(example)],
        capture_output=True,
        text=True,
        timeout=120,
        cwd=ROOT,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must narrate what they do"


def test_example_inventory_matches_readme():
    readme = (ROOT / "README.md").read_text()
    for example in EXAMPLES:
        assert example.name in readme, f"{example.name} missing from README"
