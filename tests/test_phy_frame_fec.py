"""Tests for FEC-enabled framing and its burst resilience."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.phy.coding import LineCode
from repro.phy.fec import FECScheme
from repro.phy.frame import FrameConfig, build_frame, parse_frame


def configs():
    return [
        FrameConfig(fec=FECScheme.NONE),
        FrameConfig(fec=FECScheme.HAMMING74),
        FrameConfig(fec=FECScheme.REPETITION3),
        FrameConfig(fec=FECScheme.HAMMING74, interleave_depth=8),
        FrameConfig(fec=FECScheme.REPETITION3, interleave_depth=4),
        FrameConfig(line_code=LineCode.MANCHESTER, fec=FECScheme.HAMMING74),
    ]


class TestFECFraming:
    @pytest.mark.parametrize("cfg", configs(), ids=lambda c: f"{c.fec.value}-d{c.interleave_depth}-{c.line_code.value}")
    def test_roundtrip(self, cfg):
        chips = build_frame(21, b"fec payload", cfg)
        frame = parse_frame(chips[len(cfg.preamble):], cfg)
        assert frame is not None
        assert frame.node_id == 21
        assert frame.payload == b"fec payload"
        assert frame.crc_ok
        assert frame.fec_corrections == 0

    def test_chip_accounting(self):
        for cfg in configs():
            chips = build_frame(1, b"12345", cfg)
            assert len(chips) == cfg.frame_chips(5)

    def test_fec_expands_frame(self):
        plain = FrameConfig(fec=FECScheme.NONE).frame_chips(8)
        hamming = FrameConfig(fec=FECScheme.HAMMING74).frame_chips(8)
        rep = FrameConfig(fec=FECScheme.REPETITION3).frame_chips(8)
        assert plain < hamming < rep

    def test_hamming_corrects_scattered_chip_errors(self):
        cfg = FrameConfig(fec=FECScheme.HAMMING74)
        chips = build_frame(5, b"scattered", cfg).copy()
        body = chips[len(cfg.preamble):]
        # Flip one chip of a pair (FM0 bit = "chips equal", so a single
        # chip flip inverts exactly one decoded bit), every ~40 bits, in
        # the body region only (after the 16 header bits).
        for bit_pos in (40, 80, 120):
            body[2 * bit_pos] ^= 1
        frame = parse_frame(body, cfg)
        assert frame is not None
        assert frame.crc_ok
        assert frame.payload == b"scattered"
        assert frame.fec_corrections >= 3

    def test_uncoded_frame_dies_on_same_errors(self):
        cfg = FrameConfig(fec=FECScheme.NONE)
        chips = build_frame(5, b"scattered", cfg).copy()
        body = chips[len(cfg.preamble):]
        for bit_pos in (30, 60, 90):
            body[2 * bit_pos] ^= 1
        frame = parse_frame(body, cfg)
        assert frame is not None
        assert not frame.crc_ok

    def test_interleaver_saves_burst(self):
        cfg = FrameConfig(fec=FECScheme.HAMMING74, interleave_depth=16)
        chips = build_frame(5, b"bursty channel!!", cfg).copy()
        body = chips[len(cfg.preamble):]
        # A 6-coded-bit burst in the middle of the body.
        start_bit = 16 + 60  # past the header bits
        for bit_pos in range(start_bit, start_bit + 6):
            body[2 * bit_pos] ^= 1
        frame = parse_frame(body, cfg)
        assert frame is not None
        assert frame.crc_ok
        assert frame.payload == b"bursty channel!!"

    def test_same_burst_without_interleaver_fails(self):
        cfg = FrameConfig(fec=FECScheme.HAMMING74, interleave_depth=1)
        chips = build_frame(5, b"bursty channel!!", cfg).copy()
        body = chips[len(cfg.preamble):]
        start_bit = 16 + 60
        for bit_pos in range(start_bit, start_bit + 6):
            body[2 * bit_pos] ^= 1
        frame = parse_frame(body, cfg)
        assert frame is None or not frame.crc_ok

    def test_crc_covers_header(self):
        cfg = FrameConfig(fec=FECScheme.HAMMING74)
        chips = build_frame(5, b"hdr", cfg).copy()
        body = chips[len(cfg.preamble):]
        # Corrupt a header bit that doesn't change the length byte:
        # node-id bit 0 (single chip flip inverts the FM0 bit).
        body[0] ^= 1
        frame = parse_frame(body, cfg)
        if frame is not None:
            assert not frame.crc_ok

    def test_validation(self):
        with pytest.raises(ValueError):
            FrameConfig(interleave_depth=0)

    @given(
        st.integers(min_value=0, max_value=255),
        st.binary(min_size=0, max_size=24),
        st.sampled_from([FECScheme.NONE, FECScheme.HAMMING74, FECScheme.REPETITION3]),
        st.sampled_from([1, 4, 8]),
    )
    @settings(max_examples=30)
    def test_roundtrip_property(self, node_id, payload, fec, depth):
        cfg = FrameConfig(fec=fec, interleave_depth=depth)
        chips = build_frame(node_id, payload, cfg)
        frame = parse_frame(chips[len(cfg.preamble):], cfg)
        assert frame.node_id == node_id
        assert frame.payload == payload
        assert frame.crc_ok
