"""Cross-fidelity consistency: budget vs waveform, and clock tolerance.

The analytic budget and the waveform simulator are two models of the same
link; these tests pin them to each other across operating points, and
document the receiver's tolerance to node-clock error (a battery-free
node's RC oscillator is nowhere near crystal-accurate).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Scenario, default_vab_budget
from repro.dsp.timing import resample_linear
from repro.phy.receiver import ReaderReceiver
from repro.sim.engine import simulate_trial

from tests.test_phy_receiver import CHIP_RATE, FS, loopback_record


class TestBudgetVsWaveform:
    @given(st.floats(min_value=20.0, max_value=220.0))
    @settings(max_examples=10, deadline=None)
    def test_high_margin_ranges_always_deliver(self, range_m):
        """Anywhere the budget says >=10 dB of margin, the waveform chain
        must deliver the frame — the two fidelities may not contradict
        each other in the easy regime."""
        scenario = Scenario.river(range_m=range_m)
        budget = default_vab_budget(scenario)
        if budget.margin_db(range_m) < 10.0:
            return  # outside the easy regime this property promises
        result = simulate_trial(scenario, rng=np.random.default_rng(99))
        assert result.success, f"waveform failed at {range_m:.0f} m despite margin"

    def test_deep_negative_margin_never_delivers(self):
        scenario = Scenario.river(range_m=900.0)
        budget = default_vab_budget(scenario)
        assert budget.margin_db(900.0) < -10.0
        result = simulate_trial(scenario, rng=np.random.default_rng(7))
        assert not result.frame_ok

    def test_waterfall_locations_agree_within_a_third(self):
        """The waveform BER cliff and the budget max range agree within
        ~30% — the calibration contract between the fidelities."""
        budget_range = default_vab_budget(Scenario.river()).max_range_m(1e-3)
        # Probe the waveform cliff coarsely.
        last_good = 0.0
        for r in (250.0, 300.0, 350.0, 400.0, 450.0, 500.0):
            oks = sum(
                simulate_trial(
                    Scenario.river(range_m=r), rng=np.random.default_rng(s)
                ).frame_ok
                for s in range(4)
            )
            if oks >= 3:
                last_good = r
        assert last_good == pytest.approx(budget_range, rel=0.35)


class TestNodeClockDrift:
    """The node clocks its chips from an on-die oscillator; ppm-level
    error stretches the whole frame relative to the reader's timebase."""

    def drifted_record(self, ppm, payload=b"clock drift test", seed=11):
        record = loopback_record(payload=payload, carrier_leak=0.0,
                                 noise_power=0.002, seed=seed)
        stretched = resample_linear(record, 1.0 + ppm * 1e-6)
        return stretched + 10.0  # leak after the (node-side) stretch

    def test_small_drift_tolerated(self):
        rx = ReaderReceiver(fs=FS, chip_rate=CHIP_RATE)
        for ppm in (-300.0, -100.0, 100.0, 300.0):
            result = rx.demodulate(self.drifted_record(ppm))
            assert result.success, f"failed at {ppm} ppm"

    def test_large_drift_fails_without_help(self):
        """~1 chip of accumulated slip over the frame kills the slicer:
        the documented tolerance boundary (~0.3% for this frame length).
        RC oscillators need better than this or shorter frames."""
        rx = ReaderReceiver(fs=FS, chip_rate=CHIP_RATE)
        result = rx.demodulate(self.drifted_record(4_000.0))
        assert not result.success

    def test_timing_search_buys_margin(self):
        """The +-N-sample timing search recovers part of the drift range
        by re-centring the slicer where the slip hurts most."""
        plain = ReaderReceiver(fs=FS, chip_rate=CHIP_RATE)
        searching = ReaderReceiver(fs=FS, chip_rate=CHIP_RATE, timing_search=4)
        ppm = self.find_first_failure(plain)
        result = searching.demodulate(self.drifted_record(ppm))
        assert result.success or ppm > 3_000.0

    @staticmethod
    def find_first_failure(rx, start=500.0, step=250.0, stop=4_000.0):
        ppm = start
        while ppm <= stop:
            record = TestNodeClockDrift().drifted_record(ppm)
            if not rx.demodulate(record).success:
                return ppm
            ppm += step
        return stop
