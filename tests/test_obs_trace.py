"""Tests for the Chrome trace-event exporter (repro.obs.trace)."""

import json

import pytest

from repro.obs.manifest import read_events
from repro.obs.trace import (
    TRACE_PID_RUN,
    TRACE_PID_SPANS,
    chrome_trace,
    trace_from_events,
    trace_from_timings,
    validate_trace_events,
    write_trace,
)
from repro.sim.parallel import run_observed_campaign
from repro.sim.scenario import Scenario
from repro.sim.sweep import sweep_range
from repro.sim.trials import TrialCampaign


def sample_events():
    return [
        {"ts": 100.0, "event": "campaign_start", "label": "x", "points": 1,
         "workers": 2, "seed": 3, "trials_per_point": 10},
        {"ts": 100.20, "event": "chunk_done", "point": 0, "start": 0,
         "trials": 5, "elapsed_s": 0.2},
        {"ts": 100.25, "event": "heartbeat", "done": 5, "total": 10,
         "trials_per_s": 25.0, "eta_s": 0.2},
        {"ts": 100.30, "event": "chunk_done", "point": 0, "start": 5,
         "trials": 5, "elapsed_s": 0.25},
        {"ts": 100.40, "event": "point_end", "point": 0, "elapsed_s": 0.35,
         "range_m": 50.0, "trials": 10, "ber": 0.0,
         "frame_success_rate": 1.0, "detection_rate": 1.0},
        {"ts": 100.60, "event": "campaign_end", "label": "x",
         "elapsed_s": 0.6, "total_trials": 10},
    ]


def sample_timings():
    return {
        "campaign": {"total_s": 0.6, "count": 1, "mean_ms": 600.0},
        "campaign/point": {"total_s": 0.5, "count": 1, "mean_ms": 500.0},
        "campaign/point/batch": {"total_s": 0.4, "count": 1, "mean_ms": 400.0},
    }


class TestTraceFromEvents:
    def test_campaign_and_point_become_complete_slices(self):
        trace = trace_from_events(sample_events())
        complete = {e["name"]: e for e in trace if e["ph"] == "X"}
        assert "campaign x" in complete
        assert complete["campaign x"]["dur"] == pytest.approx(0.6e6)
        assert "point 0" in complete
        assert complete["point 0"]["dur"] == pytest.approx(0.35e6)

    def test_point_busy_time_exceeding_wall_is_clamped(self):
        events = [
            {"ts": 100.0, "event": "campaign_start", "label": "x"},
            {"ts": 100.4, "event": "point_end", "point": 0,
             "elapsed_s": 1.5},
        ]
        trace = trace_from_events(events)
        point = next(e for e in trace if e["name"] == "point 0")
        assert point["ts"] == 0.0
        assert point["dur"] == pytest.approx(0.4e6)

    def test_overlapping_chunks_pack_into_separate_lanes(self):
        # chunks span [100.0, 100.2] and [100.05, 100.3]: they overlap,
        # so a faithful timeline needs two worker lanes.
        trace = trace_from_events(sample_events())
        chunk_tids = {
            e["tid"] for e in trace if e["name"].startswith("chunk")
        }
        assert len(chunk_tids) == 2
        assert 0 not in chunk_tids  # chunks never share the campaign lane

    def test_sequential_chunks_share_a_lane(self):
        events = [
            {"ts": 10.2, "event": "chunk_done", "point": 0, "start": 0,
             "trials": 5, "elapsed_s": 0.2},
            {"ts": 10.4, "event": "chunk_done", "point": 0, "start": 5,
             "trials": 5, "elapsed_s": 0.2},
        ]
        trace = trace_from_events(events)
        chunk_tids = {
            e["tid"] for e in trace if e["name"].startswith("chunk")
        }
        assert len(chunk_tids) == 1

    def test_heartbeats_become_counters(self):
        trace = trace_from_events(sample_events())
        counters = [e for e in trace if e["ph"] == "C"]
        assert {e["name"] for e in counters} == {"trials done", "trials/s"}

    def test_timestamps_are_relative_microseconds(self):
        trace = trace_from_events(sample_events())
        tss = [e["ts"] for e in trace if e["ph"] != "M"]
        assert min(tss) == pytest.approx(0.0)
        assert max(tss) <= 0.6e6 + 1.0

    def test_unknown_events_become_instants(self):
        trace = trace_from_events(
            [{"ts": 1.0, "event": "surprising_thing", "x": 1}]
        )
        instants = [e for e in trace if e["ph"] == "i"]
        assert instants and instants[0]["name"] == "surprising_thing"

    def test_empty_events(self):
        assert trace_from_events([]) == []


class TestTraceFromTimings:
    def test_children_nest_inside_parents(self):
        trace = trace_from_timings(sample_timings())
        spans = {e["args"]["path"]: e for e in trace if e["ph"] == "X"}
        campaign = spans["campaign"]
        point = spans["campaign/point"]
        batch = spans["campaign/point/batch"]
        assert point["ts"] >= campaign["ts"]
        assert point["ts"] + point["dur"] <= campaign["ts"] + campaign["dur"]
        assert batch["ts"] + batch["dur"] <= point["ts"] + point["dur"]

    def test_span_pid_is_distinct_from_timeline_pid(self):
        trace = trace_from_timings(sample_timings())
        assert {e["pid"] for e in trace} == {TRACE_PID_SPANS}
        assert TRACE_PID_SPANS != TRACE_PID_RUN


class TestValidateTraceEvents:
    def test_valid_document_passes(self):
        doc = chrome_trace(events=sample_events(), timings=sample_timings())
        count = validate_trace_events(doc)
        assert count == len(doc["traceEvents"]) > 0

    def test_bare_array_form_accepted(self):
        assert validate_trace_events(trace_from_events(sample_events())) > 0

    def test_rejects_non_trace_shapes(self):
        with pytest.raises(ValueError):
            validate_trace_events({"not": "a trace"})
        with pytest.raises(ValueError):
            validate_trace_events("nope")
        with pytest.raises(ValueError):
            validate_trace_events([{"name": "x"}])  # missing ph/pid/tid

    def test_rejects_complete_event_without_duration(self):
        with pytest.raises(ValueError):
            validate_trace_events(
                [{"name": "x", "ph": "X", "ts": 0, "pid": 1, "tid": 1}]
            )

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            validate_trace_events(
                [{"name": "x", "ph": "X", "ts": 0, "dur": -1,
                  "pid": 1, "tid": 1}]
            )


class TestEndToEnd:
    def test_observed_run_exports_valid_trace(self, tmp_path):
        scenarios = sweep_range(Scenario.river(), [50.0, 150.0])
        campaign = TrialCampaign(trials_per_point=2, seed=5)
        _, manifest = run_observed_campaign(
            scenarios, campaign, label="trace-e2e", workers=2,
            events_path=tmp_path / "run.events.jsonl", progress=False,
        )
        events = read_events(tmp_path / "run.events.jsonl")
        doc = write_trace(
            tmp_path / "run.trace.json", events=events,
            timings=manifest.timings,
        )
        on_disk = json.loads((tmp_path / "run.trace.json").read_text())
        assert validate_trace_events(on_disk) == len(doc["traceEvents"])
        names = {e["name"] for e in on_disk["traceEvents"]}
        assert "campaign trace-e2e" in names
        assert any(n.startswith("chunk") for n in names)
