"""Tests for the planar (2-D) Van Atta array."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.piezo.transducer import Transducer
from repro.vanatta.planar import (
    PlanarVanAttaArray,
    direction_cosines,
    grid_positions,
    planar_monostatic_gain,
    planar_monostatic_gain_db,
    planar_response,
    point_mirror_pairs,
)
from repro.vanatta.polarity import PairingScheme

F = 18_500.0
C = 1500.0


def ideal_planar(nu=2, nw=2):
    base = PlanarVanAttaArray.uniform(nu, nw, frequency_hz=F, sound_speed=C)
    return PlanarVanAttaArray(
        positions_m=base.positions_m,
        pairs=base.pairs,
        element=Transducer(elevation_rolloff_exponent=0.0),
        line_loss_db=0.0,
    )


class TestGeometry:
    def test_grid_centred(self):
        pos = grid_positions(3, 2, 0.04)
        np.testing.assert_allclose(pos.mean(axis=0), [0.0, 0.0], atol=1e-12)
        assert pos.shape == (6, 2)

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            grid_positions(0, 2, 0.04)
        with pytest.raises(ValueError):
            grid_positions(2, 2, -0.1)

    def test_point_mirror_pairs_cover_all(self):
        pos = grid_positions(2, 2, 0.04)
        pairs = point_mirror_pairs(pos)
        members = sorted(m for p in pairs for m in set(p))
        assert members == [0, 1, 2, 3]

    def test_odd_grid_self_pairs_centre(self):
        pos = grid_positions(3, 3, 0.04)
        pairs = point_mirror_pairs(pos)
        self_pairs = [p for p in pairs if p[0] == p[1]]
        assert len(self_pairs) == 1

    def test_asymmetric_layout_rejected(self):
        pos = np.array([[0.0, 0.0], [0.04, 0.0], [0.08, 0.0]])
        with pytest.raises(ValueError):
            point_mirror_pairs(pos)

    def test_uniform_is_point_symmetric(self):
        assert PlanarVanAttaArray.uniform(2, 2).is_point_symmetric()
        assert PlanarVanAttaArray.uniform(3, 3).is_point_symmetric()

    def test_pair_validation(self):
        pos = grid_positions(2, 2, 0.04)
        with pytest.raises(ValueError):
            PlanarVanAttaArray(positions_m=pos, pairs=((0, 3), (1, 1)))

    def test_direction_cosines_broadside(self):
        np.testing.assert_allclose(direction_cosines(0.0, 0.0), [0.0, 0.0])

    def test_direction_cosines_bounds(self):
        d = direction_cosines(45.0, 30.0)
        assert np.linalg.norm(d) <= 1.0


class TestRetrodirectivity2D:
    @given(
        st.floats(min_value=-70.0, max_value=70.0),
        st.floats(min_value=-70.0, max_value=70.0),
    )
    @settings(max_examples=40)
    def test_monostatic_gain_flat_in_both_planes(self, az, el):
        """The 2-D core property: gain = N at any (azimuth, elevation)."""
        arr = ideal_planar(2, 2)
        gain = abs(planar_monostatic_gain(arr, F, az, el, C))
        assert gain == pytest.approx(4.0, rel=1e-9)

    def test_larger_grid_scales(self):
        for nu, nw in ((2, 2), (2, 4), (4, 4)):
            arr = ideal_planar(nu, nw)
            gain = abs(planar_monostatic_gain(arr, F, 25.0, -15.0, C))
            assert gain == pytest.approx(nu * nw, rel=1e-9)

    def test_odd_grid_retrodirective(self):
        arr = ideal_planar(3, 3)
        gain = abs(planar_monostatic_gain(arr, F, 33.0, 12.0, C))
        assert gain == pytest.approx(9.0, rel=1e-9)

    def test_reduces_to_linear_in_azimuth(self):
        from repro.vanatta.array import VanAttaArray
        from repro.vanatta.retrodirective import monostatic_gain

        planar = ideal_planar(4, 1)
        base = VanAttaArray.uniform(4, frequency_hz=F, sound_speed=C)
        linear = VanAttaArray(
            positions_m=base.positions_m,
            pairs=base.pairs,
            element=Transducer(elevation_rolloff_exponent=0.0),
            line_loss_db=0.0,
        )
        for theta in (0.0, 20.0, 45.0):
            g2d = abs(planar_monostatic_gain(planar, F, theta, 0.0, C))
            g1d = abs(monostatic_gain(linear, F, theta, C))
            assert g2d == pytest.approx(g1d, rel=1e-9)

    def test_linear_array_not_retrodirective_in_elevation(self):
        """The motivation for the 2-D array: a horizontal line of elements
        pairs only across u, so elevation phase is *repeated* (u_w = 0
        aperture) — but a vertical tilt still steals element gain and,
        for a vertical-aperture array, decoheres. Check the contrast:
        a 1 x 4 vertical array paired point-mirror retrodirects in
        elevation, while the same column self-paired does not."""
        vertical = ideal_planar(1, 4)
        g = abs(planar_monostatic_gain(vertical, F, 0.0, 40.0, C))
        assert g == pytest.approx(4.0, rel=1e-9)

    def test_bistatic_reciprocity(self):
        arr = ideal_planar(2, 2)
        a = planar_response(arr, F, 10.0, 20.0, -30.0, 5.0, C)
        b = planar_response(arr, F, -30.0, 5.0, 10.0, 20.0, C)
        assert a == pytest.approx(b)

    def test_direct_pairing_decoheres(self):
        base = PlanarVanAttaArray.uniform(2, 2, frequency_hz=F, sound_speed=C)
        bad = PlanarVanAttaArray(
            positions_m=base.positions_m,
            pairs=base.pairs,
            element=Transducer(elevation_rolloff_exponent=0.0),
            pairing=PairingScheme.DIRECT,
            line_loss_db=0.0,
        )
        assert abs(planar_monostatic_gain(bad, F, 0.0, 0.0, C)) == pytest.approx(
            0.0, abs=1e-9
        )

    def test_db_form(self):
        arr = ideal_planar(2, 2)
        assert planar_monostatic_gain_db(arr, F, 15.0, 15.0, C) == pytest.approx(
            20 * math.log10(4.0), abs=1e-6
        )

    def test_element_rolloff_applies(self):
        arr = PlanarVanAttaArray.uniform(2, 2, frequency_hz=F, sound_speed=C)
        g0 = planar_monostatic_gain_db(arr, F, 0.0, 0.0, C)
        g_tilt = planar_monostatic_gain_db(arr, F, 0.0, 60.0, C)
        assert g0 - g_tilt > 2.0
