"""Tier-1 tests for the shared lint front-end (``repro.analysis.frontend``).

Locks the exit-code contract (0 clean / 1 findings / 2 unusable input),
the JSON reporter schema round-trip (including the empty-findings and
baseline-suppressed cases), and the ``--changed`` git-scoped discovery.
"""

import io
import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import EXIT_CLEAN, EXIT_ERROR, EXIT_FINDINGS
from repro.analysis.findings import Finding
from repro.analysis.frontend import changed_files, run_lint

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"


def _import_lint_annotations():
    sys.path.insert(0, str(REPO_ROOT / "tools"))
    try:
        import lint_annotations
    finally:
        sys.path.pop(0)
    return lint_annotations


def _run(paths, **kwargs):
    out = io.StringIO()
    code = run_lint([str(p) for p in paths], out=out, **kwargs)
    return code, out.getvalue()


# ---------------------------------------------------------------------------
# exit-code contract
# ---------------------------------------------------------------------------


def test_exit_zero_on_clean_tree():
    code, text = _run([FIXTURES / "vab001_clean.py"])
    assert code == EXIT_CLEAN
    assert text.startswith("clean:")


def test_exit_one_on_findings():
    code, _ = _run([FIXTURES / "vab001_bad.py"])
    assert code == EXIT_FINDINGS


def test_exit_two_on_missing_path():
    code, _ = _run([FIXTURES / "no_such_file.py"])
    assert code == EXIT_ERROR


def test_exit_two_on_syntax_error():
    code, _ = _run([FIXTURES / "broken_syntax.py"])
    assert code == EXIT_ERROR


def test_exit_two_on_unknown_rule_id():
    code, _ = _run([FIXTURES / "vab001_bad.py"], select=["VAB999"])
    assert code == EXIT_ERROR


def test_exit_two_on_update_baseline_without_baseline():
    code, _ = _run([FIXTURES / "vab001_bad.py"], update_baseline=True)
    assert code == EXIT_ERROR


# ---------------------------------------------------------------------------
# JSON reporter schema
# ---------------------------------------------------------------------------

SCHEMA_KEYS = {"files", "rules", "clean", "findings", "errors", "counts"}


def test_json_schema_round_trips_findings():
    code, text = _run([FIXTURES / "vab001_bad.py"], as_json=True)
    assert code == EXIT_FINDINGS
    payload = json.loads(text)
    assert SCHEMA_KEYS <= set(payload)
    assert payload["clean"] is False
    assert payload["files"] == 1
    assert sum(payload["counts"].values()) == len(payload["findings"])
    for raw in payload["findings"]:
        finding = Finding(
            path=raw["path"], line=raw["line"], col=raw["col"],
            rule_id=raw["rule"], message=raw["message"],
        )
        assert finding.to_dict() == raw


def test_json_schema_empty_findings():
    code, text = _run([FIXTURES / "vab001_clean.py"], as_json=True)
    assert code == EXIT_CLEAN
    payload = json.loads(text)
    assert SCHEMA_KEYS <= set(payload)
    assert payload["clean"] is True
    assert payload["findings"] == []
    assert payload["errors"] == []
    assert payload["counts"] == {}


def test_json_includes_engine_stats_under_units():
    _, text = _run([FIXTURES / "vab016_bad.py"], as_json=True, units=True)
    payload = json.loads(text)
    assert payload["units"]["engine_version"]
    assert payload["shapes"]["engine_version"]
    assert payload["counts"] == {"VAB016": 2}


def test_baseline_suppressed_findings_exit_clean(tmp_path):
    baseline = tmp_path / "baseline.json"
    code, _ = _run(
        [FIXTURES / "vab001_bad.py"],
        baseline=str(baseline), update_baseline=True,
    )
    assert code == EXIT_CLEAN and baseline.is_file()

    code, text = _run(
        [FIXTURES / "vab001_bad.py"], baseline=str(baseline), as_json=True
    )
    assert code == EXIT_CLEAN
    payload = json.loads(text)
    assert payload["clean"] is True
    assert payload["findings"] == []


# ---------------------------------------------------------------------------
# --changed: git-scoped discovery
# ---------------------------------------------------------------------------

needs_git = pytest.mark.skipif(
    shutil.which("git") is None, reason="git not available"
)


def _git_repo_with_two_files(tmp_path):
    def git(*argv):
        subprocess.run(
            ["git", *argv], cwd=tmp_path, check=True, capture_output=True
        )

    git("init", "-q")
    git("config", "user.email", "lint@test")
    git("config", "user.name", "lint")
    (tmp_path / "steady.py").write_text(
        "def steady() -> int:\n    return 1\n"
    )
    (tmp_path / "moving.py").write_text(
        "def moving() -> int:\n    return 1\n"
    )
    git("add", "-A")
    git("commit", "-q", "-m", "seed")
    (tmp_path / "moving.py").write_text(
        "def moving() -> int:\n    return 2\n"
    )
    return tmp_path


@needs_git
def test_changed_restricts_lint_to_dirty_files(tmp_path, monkeypatch):
    repo = _git_repo_with_two_files(tmp_path)
    monkeypatch.chdir(repo)
    code, text = _run([repo], changed="HEAD", as_json=True)
    assert code == EXIT_CLEAN
    assert json.loads(text)["files"] == 1


@needs_git
def test_changed_files_lists_modified_and_untracked(tmp_path, monkeypatch):
    repo = _git_repo_with_two_files(tmp_path)
    (repo / "fresh.py").write_text("def fresh() -> int:\n    return 3\n")
    monkeypatch.chdir(repo)
    names = sorted(p.name for p in changed_files("HEAD"))
    assert names == ["fresh.py", "moving.py"]


@needs_git
def test_changed_with_bad_ref_exits_two(tmp_path, monkeypatch):
    repo = _git_repo_with_two_files(tmp_path)
    monkeypatch.chdir(repo)
    code, _ = _run([repo], changed="no-such-ref")
    assert code == EXIT_ERROR


def test_changed_outside_a_repo_exits_two(tmp_path, monkeypatch):
    (tmp_path / "lonely.py").write_text("def lonely() -> int:\n    return 1\n")
    monkeypatch.chdir(tmp_path)
    monkeypatch.setenv("GIT_CEILING_DIRECTORIES", str(tmp_path))
    code, _ = _run([tmp_path], changed="HEAD")
    # git missing and "not a repository" both surface as unusable input
    assert code == EXIT_ERROR


# ---------------------------------------------------------------------------
# GitHub annotations from the JSON report (tools/lint_annotations.py)
# ---------------------------------------------------------------------------


def test_annotation_lines_escape_workflow_commands():
    lint_annotations = _import_lint_annotations()
    report = {
        "findings": [{
            "path": "src/a,b.py", "line": 3, "col": 7,
            "rule": "VAB013", "message": "50% drop\nsecond line",
        }],
        "errors": [{
            "path": "src/broken.py", "line": 1, "col": 0,
            "rule": "VAB000", "message": "could not parse file: bad",
        }],
    }
    lines = lint_annotations.annotation_lines(report)
    assert lines[0] == (
        "::error file=src/a%2Cb.py,line=3,col=7,title=VAB013"
        "::50%25 drop%0Asecond line"
    )
    assert lines[1].startswith("::error file=src/broken.py,")
    assert "title=VAB000" in lines[1]


def test_lint_annotations_cli_round_trip(tmp_path, capsys):
    lint_annotations = _import_lint_annotations()
    _, text = _run([FIXTURES / "vab016_bad.py"], as_json=True, units=True)
    report_path = tmp_path / "lint-report.json"
    report_path.write_text(text)
    assert lint_annotations.main([str(report_path)]) == 0
    out = capsys.readouterr().out.splitlines()
    assert len(out) == 2
    assert all(line.startswith("::error file=") for line in out)
    assert "title=VAB016" in out[0]


def test_lint_annotations_never_fails_the_step(tmp_path, capsys):
    lint_annotations = _import_lint_annotations()
    assert lint_annotations.main([str(tmp_path / "missing.json")]) == 0
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    assert lint_annotations.main([str(bad)]) == 0
    assert lint_annotations.main([]) == 0
    assert capsys.readouterr().out == ""


# ---------------------------------------------------------------------------
# SARIF 2.1.0 export (--sarif)
# ---------------------------------------------------------------------------

# Vendored subset of the SARIF 2.1.0 schema: the properties the GitHub
# code-scanning ingestion actually requires.  The full schema is ~500 kB
# and network access is not available in CI, so we pin the load-bearing
# structure here and validate with jsonschema.
SARIF_SUBSET_SCHEMA = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "version": {"const": "2.1.0"},
        "$schema": {"type": "string", "format": "uri"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "version": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                        },
                                    },
                                },
                            },
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["message"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "level": {
                                    "enum": [
                                        "none", "note", "warning", "error",
                                    ],
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "properties": {
                                                    "artifactLocation": {
                                                        "type": "object",
                                                        "required": ["uri"],
                                                    },
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                            "startColumn": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                        },
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


def test_sarif_log_validates_against_the_2_1_0_schema(tmp_path):
    jsonschema = pytest.importorskip("jsonschema")
    sarif_path = tmp_path / "lint.sarif"
    code, _ = _run(
        [FIXTURES / "vab017_bad.py"], units=True, sarif=str(sarif_path)
    )
    assert code == EXIT_FINDINGS
    log = json.loads(sarif_path.read_text(encoding="utf-8"))
    jsonschema.validate(log, SARIF_SUBSET_SCHEMA)

    run = log["runs"][0]
    assert run["tool"]["driver"]["name"] == "vablint"
    rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    # The catalogue spans the parse sentinel, the per-file registry,
    # and all three engines.
    assert {"VAB000", "VAB001", "VAB006", "VAB011", "VAB017", "VAB022"} <= rule_ids
    assert run["results"], "findings must surface as SARIF results"
    for result in run["results"]:
        assert result["ruleId"].startswith("VAB")
        assert result["level"] == "warning"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1 and region["startColumn"] >= 1


def test_sarif_parse_errors_map_to_level_error(tmp_path):
    sarif_path = tmp_path / "lint.sarif"
    _run([FIXTURES / "broken_syntax.py"], sarif=str(sarif_path))
    log = json.loads(sarif_path.read_text(encoding="utf-8"))
    results = log["runs"][0]["results"]
    assert [r["ruleId"] for r in results] == ["VAB000"]
    assert results[0]["level"] == "error"


def test_sarif_clean_run_writes_an_empty_result_set(tmp_path):
    sarif_path = tmp_path / "lint.sarif"
    code, _ = _run([FIXTURES / "vab017_clean.py"], units=True,
                   sarif=str(sarif_path))
    assert code == EXIT_CLEAN
    log = json.loads(sarif_path.read_text(encoding="utf-8"))
    assert log["runs"][0]["results"] == []


# ---------------------------------------------------------------------------
# --stats: per-engine timing and cache hit/miss counts
# ---------------------------------------------------------------------------


def test_stats_block_is_opt_in():
    """Wall-clock timings must never leak into the default (byte-
    deterministic) payloads."""
    _, text = _run([FIXTURES / "vab017_clean.py"], units=True, as_json=True)
    assert "stats" not in json.loads(text)
    _, text = _run([FIXTURES / "vab017_clean.py"], units=True)
    assert "--- lint stats ---" not in text


def test_stats_reports_cache_hits_on_a_warm_run(tmp_path):
    cache = tmp_path / "units_cache.json"
    _run([FIXTURES / "vab017_clean.py"], units=True,
         units_cache=str(cache), as_json=True, stats=True)
    code, text = _run([FIXTURES / "vab017_clean.py"], units=True,
                      units_cache=str(cache), as_json=True, stats=True)
    assert code == EXIT_CLEAN
    stats = json.loads(text)["stats"]
    for engine in ("units", "shapes", "effects"):
        assert stats[engine]["hits"] > 0, engine
        assert stats[engine]["misses"] == 0, engine
        assert stats[engine]["passes"] >= 1, engine
    assert "rules" in stats["timings_s"]
    assert all(v >= 0 for v in stats["timings_s"].values())


def test_stats_text_block_renders_per_engine_lines(tmp_path):
    cache = tmp_path / "units_cache.json"
    _, text = _run([FIXTURES / "vab017_clean.py"], units=True,
                   units_cache=str(cache), stats=True)
    assert "--- lint stats ---" in text
    for engine in ("units:", "shapes:", "effects:"):
        assert engine in text


# ---------------------------------------------------------------------------
# --changed: engines keep whole-call-graph visibility
# ---------------------------------------------------------------------------


def _git_repo_with_effect_pair(tmp_path):
    def git(*argv):
        subprocess.run(
            ["git", *argv], cwd=tmp_path, check=True, capture_output=True
        )

    git("init", "-q")
    git("config", "user.email", "lint@test")
    git("config", "user.name", "lint")
    (tmp_path / "producer.py").write_text(
        "def knob() -> str:\n"
        '    return "x"\n'
    )
    (tmp_path / "caller.py").write_text(
        "from functools import lru_cache\n"
        "\n"
        "from producer import knob\n"
        "\n"
        "\n"
        "@lru_cache(maxsize=None)\n"
        "def cached_knob() -> str:\n"
        "    return knob()\n"
    )
    git("add", "-A")
    git("commit", "-q", "-m", "seed")
    return tmp_path


def _make_producer_effectful(repo):
    (repo / "producer.py").write_text(
        "import os\n"
        "\n"
        "\n"
        "def knob() -> str:\n"
        '    return os.getenv("REPRO_KNOB", "x")\n'
    )


@needs_git
def test_changed_reanalyzes_dependents_of_changed_files(tmp_path, monkeypatch):
    """Regression: ``--changed`` scopes the *per-file* rules to the
    dirty files, but the dataflow engines must still see the whole tree
    — an effect introduced in producer.py has to surface the VAB017 in
    the unchanged caller.py."""
    repo = _git_repo_with_effect_pair(tmp_path)
    _make_producer_effectful(repo)
    monkeypatch.chdir(repo)
    code, text = _run([repo], changed="HEAD", units=True, as_json=True)
    assert code == EXIT_FINDINGS
    payload = json.loads(text)
    assert payload["files"] == 1  # per-file rules stay scoped to the edit
    hits = {(Path(f["path"]).name, f["rule"]) for f in payload["findings"]}
    assert ("caller.py", "VAB017") in hits


@needs_git
def test_changed_invalidates_warm_engine_caches(tmp_path, monkeypatch):
    """Same regression with a primed cache: the changed file is forced
    dirty even when the cache already holds its (stale) summaries, and
    the dependent closure pulls the unchanged caller with it."""
    repo = _git_repo_with_effect_pair(tmp_path)
    monkeypatch.chdir(repo)
    cache = repo / ".vablint_units_cache.json"
    code, _ = _run([repo], units=True, units_cache=str(cache), as_json=True)
    assert code == EXIT_CLEAN  # primes all three engine caches

    _make_producer_effectful(repo)
    code, text = _run([repo], changed="HEAD", units=True,
                      units_cache=str(cache), as_json=True)
    assert code == EXIT_FINDINGS
    hits = {(Path(f["path"]).name, f["rule"])
            for f in json.loads(text)["findings"]}
    assert ("caller.py", "VAB017") in hits


# ---------------------------------------------------------------------------
# baseline round-trip across all three engines
# ---------------------------------------------------------------------------


def test_update_baseline_covers_all_three_engines_in_one_pass(tmp_path):
    targets = [
        FIXTURES / "vab006_bad.py",   # units finding
        FIXTURES / "vab013_bad.py",   # shapes finding
        FIXTURES / "vab017_bad.py",   # effects finding
    ]
    baseline = tmp_path / "baseline.json"
    code, _ = _run(targets, units=True,
                   baseline=str(baseline), update_baseline=True)
    assert code == EXIT_CLEAN and baseline.is_file()

    recorded = json.loads(baseline.read_text(encoding="utf-8"))
    keys = "\n".join(recorded["entries"])
    for rule in ("VAB006", "VAB013", "VAB017"):
        assert f"::{rule}::" in keys, rule

    code, text = _run(targets, units=True,
                      baseline=str(baseline), as_json=True)
    assert code == EXIT_CLEAN
    payload = json.loads(text)
    assert payload["clean"] is True
    assert payload["findings"] == []
