"""Batched point engine: bit-identity against the per-trial loop.

The batched engine's contract is not "close" — it is *exact*: for every
scenario family, payload size, and SI setting, `engine="batched"` must
reproduce the per-trial loop's ``TrialResult`` stream field for field,
bit for bit. The kernel earns this by construction (the per-trial path
delegates to the same vectorised kernel with batch size 1), and this
suite is the gate that keeps it true as either path evolves.
"""

import dataclasses

import numpy as np
import pytest

from repro.core import Scenario
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.phy.receiver import ReaderReceiver
from repro.sim.trials import TrialCampaign, run_campaign
from repro.sim.sweep import sweep_range

TRIALS = 6


def run_engines(scenario, **kwargs):
    batched = TrialCampaign(
        trials_per_point=TRIALS, seed=2023, engine="batched", **kwargs
    )
    serial = dataclasses.replace(batched, engine="per-trial")
    return (
        batched.run_trials(scenario, 0, 0, TRIALS),
        serial.run_trials(scenario, 0, 0, TRIALS),
    )


def assert_identical(batched, serial):
    assert len(batched) == len(serial) == TRIALS
    for got, want in zip(batched, serial):
        assert got == want


class TestBatchedMatchesPerTrial:
    @pytest.mark.parametrize(
        "scenario",
        [
            Scenario.river(100.0),
            Scenario.river(330.0),
            Scenario.ocean(100.0),
            Scenario(),
        ],
        ids=["river-100", "river-330", "ocean-100", "default"],
    )
    def test_named_scenarios(self, scenario):
        assert_identical(*run_engines(scenario))

    @pytest.mark.parametrize("payload_bytes", [4, 8, 16])
    def test_payload_sizes(self, payload_bytes):
        assert_identical(
            *run_engines(Scenario.river(150.0), payload_bytes=payload_bytes)
        )

    @pytest.mark.parametrize("si_suppression_db", [130.0, None])
    def test_si_suppression_settings(self, si_suppression_db):
        assert_identical(
            *run_engines(
                Scenario.river(250.0), si_suppression_db=si_suppression_db
            )
        )

    def test_sub_batches_are_bitwise_invariant(self):
        # The parallel runner may hand the kernel any contiguous trial
        # slice; splitting a point must not perturb a single bit.
        scenario = Scenario.river(250.0)
        campaign = TrialCampaign(
            trials_per_point=TRIALS, seed=2023, engine="batched"
        )
        whole = campaign.run_trials(scenario, 0, 0, TRIALS)
        split = campaign.run_trials(scenario, 0, 0, 2) + campaign.run_trials(
            scenario, 0, 2, 5
        ) + campaign.run_trials(scenario, 0, 5, TRIALS)
        assert whole == split

    def test_full_campaign_matches(self):
        scenarios = sweep_range(Scenario.river(), [50.0, 330.0])
        batched = run_campaign(
            scenarios,
            TrialCampaign(trials_per_point=4, seed=11, engine="batched"),
        )
        serial = run_campaign(
            scenarios,
            TrialCampaign(trials_per_point=4, seed=11, engine="per-trial"),
        )
        assert batched.points == serial.points


class TestEngineDispatch:
    def test_custom_receiver_factory_falls_back(self):
        # A custom factory opts out of the batched path (its receiver
        # could be any object) — results must equal the per-trial loop
        # and the fallback must be visible in the metrics.
        scenario = Scenario.river(100.0)
        factory = lambda sc: ReaderReceiver.for_scenario(sc)  # noqa: E731
        auto = TrialCampaign(
            trials_per_point=TRIALS, seed=3, receiver_factory=factory
        )
        pinned = TrialCampaign(
            trials_per_point=TRIALS, seed=3, engine="per-trial"
        )
        assert not auto.uses_batched_engine()
        registry = MetricsRegistry()
        with use_registry(registry):
            got = auto.run_trials(scenario, 0, 0, TRIALS)
        want = pinned.run_trials(scenario, 0, 0, TRIALS)
        assert got == want
        assert registry.counters["repro.sim.trials.fallback_trials"] == TRIALS
        assert "repro.sim.trials.batched_trials" not in registry.counters

    def test_auto_uses_batched_engine_for_stock_receivers(self):
        scenario = Scenario.river(100.0)
        campaign = TrialCampaign(trials_per_point=TRIALS, seed=3)
        assert campaign.uses_batched_engine()
        registry = MetricsRegistry()
        with use_registry(registry):
            campaign.run_trials(scenario, 0, 0, TRIALS)
        assert registry.counters["repro.sim.trials.batched_trials"] == TRIALS
        assert "repro.sim.trials.fallback_trials" not in registry.counters
        assert registry.counters["repro.phy.batch.batches"] >= 1
        assert registry.gauges["repro.phy.batch.size"] == TRIALS

    def test_unsupported_receiver_falls_back_under_auto(self):
        scenario = Scenario.river(100.0)
        rake = lambda sc: ReaderReceiver.for_scenario(sc, rake_taps=2)  # noqa: E731
        campaign = TrialCampaign(
            trials_per_point=2, seed=5, receiver_factory=rake
        )
        registry = MetricsRegistry()
        with use_registry(registry):
            campaign.run_trials(scenario, 0, 0, 2)
        assert registry.counters["repro.sim.trials.fallback_trials"] == 2

    def test_engine_batched_rejects_unsupported_receiver(self):
        scenario = Scenario.river(100.0)
        rake = lambda sc: ReaderReceiver.for_scenario(sc, rake_taps=2)  # noqa: E731
        campaign = TrialCampaign(
            trials_per_point=2, seed=5, engine="batched",
            receiver_factory=rake,
        )
        with pytest.raises(ValueError, match="batched"):
            campaign.run_trials(scenario, 0, 0, 2)

    def test_invalid_engine_name_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            TrialCampaign(engine="warp-drive")
