"""Tests for absorption models (Thorp and Francois-Garrison)."""

import pytest
from hypothesis import given, strategies as st

from repro.acoustics.absorption import (
    absorption_db_per_km,
    absorption_francois_garrison,
    absorption_thorp,
)
from repro.acoustics.constants import WaterProperties


class TestThorp:
    def test_known_value_at_10khz(self):
        # Thorp at 10 kHz is about 1 dB/km (textbook figure).
        assert absorption_thorp(10_000.0) == pytest.approx(1.0, rel=0.25)

    def test_known_value_at_100khz(self):
        # ~35 dB/km around 100 kHz.
        assert absorption_thorp(100_000.0) == pytest.approx(35.0, rel=0.3)

    def test_monotonic_increase(self):
        freqs = [1e3, 5e3, 10e3, 20e3, 50e3, 1e5, 5e5]
        alphas = [absorption_thorp(f) for f in freqs]
        assert alphas == sorted(alphas)

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            absorption_thorp(0.0)

    @given(st.floats(min_value=100.0, max_value=1e6))
    def test_always_positive(self, f):
        assert absorption_thorp(f) > 0.0


class TestFrancoisGarrison:
    def test_fresh_water_absorbs_less_than_sea(self):
        river = WaterProperties.river()
        ocean = WaterProperties.ocean()
        f = 18_500.0
        assert absorption_francois_garrison(f, river) < absorption_francois_garrison(
            f, ocean
        )

    def test_fresh_water_order_of_magnitude(self):
        # At ~18.5 kHz fresh water sits far below sea water (no ionic
        # relaxation): expect < 0.3 of the sea-water value.
        f = 18_500.0
        fresh = absorption_francois_garrison(f, WaterProperties.river())
        salt = absorption_francois_garrison(f, WaterProperties.ocean())
        assert fresh < 0.3 * salt

    def test_tracks_thorp_in_sea_water(self):
        # FG and Thorp should agree within a factor ~2 in Thorp's regime.
        water = WaterProperties(temperature_c=10.0, salinity_ppt=35.0, ph=8.0)
        for f in (5e3, 10e3, 20e3, 50e3):
            fg = absorption_francois_garrison(f, water)
            th = absorption_thorp(f)
            assert fg == pytest.approx(th, rel=1.0)

    def test_monotonic_in_frequency(self):
        water = WaterProperties.ocean()
        freqs = [5e3, 10e3, 20e3, 40e3, 80e3]
        alphas = [absorption_francois_garrison(f, water) for f in freqs]
        assert alphas == sorted(alphas)

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            absorption_francois_garrison(-1.0, WaterProperties.ocean())

    @given(
        st.floats(min_value=1e3, max_value=1e5),
        st.floats(min_value=2.0, max_value=30.0),
        st.floats(min_value=0.0, max_value=40.0),
    )
    def test_positive_for_all_waters(self, f, temp, sal):
        water = WaterProperties(temperature_c=temp, salinity_ppt=sal)
        assert absorption_francois_garrison(f, water) > 0.0


class TestDispatch:
    def test_defaults_to_thorp(self):
        assert absorption_db_per_km(20e3) == absorption_thorp(20e3)

    def test_uses_fg_with_water(self):
        water = WaterProperties.river()
        assert absorption_db_per_km(20e3, water) == absorption_francois_garrison(
            20e3, water
        )
