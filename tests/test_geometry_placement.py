"""Tests for poses and incidence-angle bookkeeping."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry.placement import (
    Pose,
    bearing_deg,
    elevation_deg,
    incidence_angle_deg,
    slant_range,
)
from repro.geometry.vec3 import Vec3


class TestPose:
    def test_default_broadside_is_plus_x(self):
        p = Pose(Vec3.zero())
        b = p.broadside
        assert b.x == pytest.approx(1.0)
        assert b.y == pytest.approx(0.0, abs=1e-12)

    def test_heading_90_points_plus_y(self):
        b = Pose(Vec3.zero(), heading_deg=90.0).broadside
        assert b.y == pytest.approx(1.0)
        assert b.x == pytest.approx(0.0, abs=1e-12)

    def test_tilt_points_toward_surface(self):
        b = Pose(Vec3(0, 0, 5), tilt_deg=90.0).broadside
        assert b.z == pytest.approx(-1.0)

    def test_facing_target(self):
        p = Pose(Vec3.zero()).facing(Vec3(0.0, 10.0, 0.0))
        assert p.heading_deg == pytest.approx(90.0)
        assert p.tilt_deg == pytest.approx(0.0, abs=1e-9)

    def test_facing_shallower_target_tilts_up(self):
        p = Pose(Vec3(0, 0, 10)).facing(Vec3(10.0, 0.0, 0.0))
        assert p.tilt_deg > 0

    def test_rotated_accumulates(self):
        p = Pose(Vec3.zero(), 10.0).rotated(15.0)
        assert p.heading_deg == pytest.approx(25.0)

    def test_translated_moves_position_only(self):
        p = Pose(Vec3(1, 1, 1), 33.0).translated(Vec3(1, 0, 0))
        assert p.position == Vec3(2, 1, 1)
        assert p.heading_deg == 33.0


class TestAngles:
    def test_slant_range(self):
        assert slant_range(Vec3.zero(), Vec3(3, 4, 0)) == pytest.approx(5.0)

    def test_bearing_quadrants(self):
        assert bearing_deg(Vec3.zero(), Vec3(1, 0, 0)) == pytest.approx(0.0)
        assert bearing_deg(Vec3.zero(), Vec3(0, 1, 0)) == pytest.approx(90.0)
        assert bearing_deg(Vec3.zero(), Vec3(-1, 0, 0)) == pytest.approx(180.0)

    def test_elevation_sign(self):
        # Target above (smaller z) has positive elevation.
        assert elevation_deg(Vec3(0, 0, 10), Vec3(10, 0, 0)) == pytest.approx(45.0)
        assert elevation_deg(Vec3(0, 0, 0), Vec3(10, 0, 10)) == pytest.approx(-45.0)

    def test_incidence_zero_when_facing(self):
        node = Pose(Vec3(100, 0, 2), heading_deg=180.0)
        assert incidence_angle_deg(node, Vec3(0, 0, 2)) == pytest.approx(0.0, abs=1e-9)

    def test_incidence_tracks_rotation(self):
        node = Pose(Vec3(100, 0, 2), heading_deg=180.0)
        for offset in (15.0, 30.0, 60.0):
            rotated = node.rotated(offset)
            assert incidence_angle_deg(rotated, Vec3(0, 0, 2)) == pytest.approx(
                offset, abs=1e-9
            )

    @given(st.floats(min_value=-179, max_value=179))
    def test_incidence_is_unsigned_and_bounded(self, offset):
        node = Pose(Vec3(10, 0, 2), heading_deg=180.0 + offset)
        angle = incidence_angle_deg(node, Vec3(0, 0, 2))
        assert 0.0 <= angle <= 180.0
        assert angle == pytest.approx(abs(offset), abs=1e-6)
