"""Tier-1 tests for the dimensional-analysis engine (VAB006..VAB010).

Fixture pairs with pinned line numbers lock each rule; the cache tests
lock the incremental contract (edit one file -> only it and its
call-graph dependents re-analyze); the determinism test locks
byte-identical reports; the baseline tests lock the differential CI
gate's arithmetic.
"""

import json
from collections import Counter
from pathlib import Path

import pytest

import repro
from repro.analysis import discover_files, lint_paths, render_json
from repro.analysis.findings import Finding
from repro.analysis.units import (
    UNIT_RULE_IDS,
    UNIT_RULES,
    analyze_units,
    diff_against_baseline,
    finding_key,
    load_baseline,
    write_baseline,
)
from repro.analysis.units.vocab import (
    combine_additive,
    combine_divisive,
    combine_multiplicative,
    unit_from_name,
)

FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"

# rule id -> (bad fixture, expected finding lines in order)
EXPECTED_UNITS_BAD = {
    "VAB006": ("vab006_bad.py", [6, 12]),
    "VAB007": ("vab007_bad.py", [7]),
    "VAB008": ("vab008_bad.py", [8, 13]),
    "VAB009": ("vab009_bad.py", [6, 12]),
    "VAB010": ("vab010_bad.py", [13, 19]),
}


# ---------------------------------------------------------------------------
# the rules, one by one
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("rule_id", sorted(EXPECTED_UNITS_BAD))
def test_bad_fixture_trips_exactly_the_expected_lines(rule_id):
    name, lines = EXPECTED_UNITS_BAD[rule_id]
    report = lint_paths([FIXTURES / name], select=[rule_id], units=True)
    assert [f.rule_id for f in report.findings] == [rule_id] * len(lines)
    assert [f.line for f in report.findings] == lines


@pytest.mark.parametrize("rule_id", sorted(EXPECTED_UNITS_BAD))
def test_clean_twin_is_clean_under_every_rule(rule_id):
    name = EXPECTED_UNITS_BAD[rule_id][0].replace("_bad", "_clean")
    report = lint_paths([FIXTURES / name], units=True)
    assert report.clean, [f.render() for f in report.findings]


def test_unit_rule_ids_and_catalogue_agree():
    assert UNIT_RULE_IDS == tuple(sorted(EXPECTED_UNITS_BAD))
    for rule_id, (name, summary) in UNIT_RULES.items():
        assert name and summary, rule_id


def test_src_repro_is_dimensionally_clean():
    """The acceptance gate: the shipped physics carries no unit bugs."""
    package_root = Path(repro.__file__).resolve().parent
    report = analyze_units(discover_files([package_root]))
    assert report.clean, "\n".join(f.render() for f in report.findings)
    assert report.files > 50
    assert report.passes >= 1


def test_units_findings_respect_suppressions(tmp_path):
    src = (
        "def f(a_db: float, b_db: float) -> float:\n"
        "    return a_db * b_db  # vablint: disable=VAB006\n"
    )
    path = tmp_path / "suppressed.py"
    path.write_text(src)
    assert analyze_units([path]).clean


def test_interprocedural_conflict_across_files(tmp_path):
    (tmp_path / "callee.py").write_text(
        "def spreading_db(distance_m: float) -> float:\n"
        "    return 15.0\n"
    )
    (tmp_path / "caller.py").write_text(
        "from callee import spreading_db\n"
        "\n"
        "def budget(range_km: float) -> float:\n"
        "    return spreading_db(range_km)\n"
    )
    report = analyze_units(sorted(tmp_path.glob("*.py")))
    assert [(f.rule_id, Path(f.path).name, f.line) for f in report.findings] == [
        ("VAB010", "caller.py", 4)
    ]


# ---------------------------------------------------------------------------
# incremental cache
# ---------------------------------------------------------------------------


def _write_three_modules(tmp_path):
    a = tmp_path / "alpha.py"
    b = tmp_path / "beta.py"
    c = tmp_path / "gamma.py"
    a.write_text(
        "def source_level_db() -> float:\n"
        "    return 180.0\n"
    )
    b.write_text(
        "from alpha import source_level_db\n"
        "\n"
        "def margin_db() -> float:\n"
        "    return source_level_db() - 10.0\n"
    )
    c.write_text(
        "def spacing_m() -> float:\n"
        "    return 0.042\n"
    )
    return a, b, c


def test_cache_reanalyzes_only_changed_files_and_dependents(tmp_path):
    a, b, c = _write_three_modules(tmp_path)
    cache = tmp_path / "units_cache.json"
    files = [a, b, c]

    cold = analyze_units(files, cache_path=cache)
    assert sorted(cold.analyzed) == sorted(f.as_posix() for f in files)
    assert cold.reused == []

    warm = analyze_units(files, cache_path=cache)
    assert warm.analyzed == []
    assert sorted(warm.reused) == sorted(f.as_posix() for f in files)

    # Editing alpha dirties alpha AND its caller beta, but not gamma.
    a.write_text(
        "def source_level_db() -> float:\n"
        "    return 175.0\n"
    )
    edited = analyze_units(files, cache_path=cache)
    assert sorted(edited.analyzed) == sorted([a.as_posix(), b.as_posix()])
    assert edited.reused == [c.as_posix()]


def test_cache_catches_findings_introduced_in_dependents(tmp_path):
    a, b, c = _write_three_modules(tmp_path)
    cache = tmp_path / "units_cache.json"
    files = [a, b, c]
    assert analyze_units(files, cache_path=cache).clean

    # The callee's return changes meaning: the cached caller must be
    # re-analyzed against the new summary and now conflicts.
    a.write_text(
        "def source_level_db() -> float:\n"
        "    level_lin = 1e18\n"
        "    return level_lin\n"
    )
    report = analyze_units(files, cache_path=cache)
    assert b.as_posix() in report.analyzed
    assert any(f.rule_id == "VAB010" for f in report.findings), [
        f.render() for f in report.findings
    ]


def test_cache_invalidates_on_engine_version_change(tmp_path, monkeypatch):
    a, b, c = _write_three_modules(tmp_path)
    cache = tmp_path / "units_cache.json"
    analyze_units([a, b, c], cache_path=cache)
    import repro.analysis.units.cache as cache_mod
    monkeypatch.setattr(cache_mod, "ENGINE_VERSION", "999.0.0")
    report = analyze_units([a, b, c], cache_path=cache)
    assert report.reused == []
    assert len(report.analyzed) == 3


def test_damaged_cache_degrades_to_cold_run(tmp_path):
    a, b, c = _write_three_modules(tmp_path)
    cache = tmp_path / "units_cache.json"
    cache.write_text("{not json")
    report = analyze_units([a, b, c], cache_path=cache)
    assert len(report.analyzed) == 3
    # And the rewritten cache is usable.
    assert analyze_units([a, b, c], cache_path=cache).analyzed == []


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------


def test_reports_are_byte_identical_across_runs():
    bad = [FIXTURES / name for name, _ in EXPECTED_UNITS_BAD.values()]
    first = render_json(lint_paths(bad, units=True))
    second = render_json(lint_paths(bad, units=True))
    assert first == second


def test_cached_findings_match_cold_findings_exactly(tmp_path):
    bad = [FIXTURES / name for name, _ in EXPECTED_UNITS_BAD.values()]
    cache = tmp_path / "units_cache.json"
    cold = lint_paths(bad, units=True, units_cache=cache)
    warm = lint_paths(bad, units=True, units_cache=cache)
    assert warm.units_stats["analyzed"] == 0
    assert warm.shapes_stats["analyzed"] == 0
    assert warm.effects_stats["analyzed"] == 0
    cold_payload = json.loads(render_json(cold))
    warm_payload = json.loads(render_json(warm))
    for payload in (cold_payload, warm_payload):
        payload.pop("units")
        payload.pop("shapes")
        payload.pop("effects")
    assert cold_payload == warm_payload


def test_parallel_jobs_match_serial_output():
    bad = [FIXTURES / name for name, _ in EXPECTED_UNITS_BAD.values()]
    serial = render_json(lint_paths(bad, jobs=1))
    parallel = render_json(lint_paths(bad, jobs=2))
    assert serial == parallel


# ---------------------------------------------------------------------------
# differential baselines
# ---------------------------------------------------------------------------


def test_baseline_roundtrip_absorbs_known_findings(tmp_path):
    report = lint_paths([FIXTURES / "vab006_bad.py"], select=["VAB006"], units=True)
    assert report.findings
    path = tmp_path / "baseline.json"
    write_baseline(report.findings, path)
    new, resolved = diff_against_baseline(report.findings, load_baseline(path))
    assert new == [] and resolved == 0


def test_baseline_flags_only_new_findings(tmp_path):
    six = lint_paths([FIXTURES / "vab006_bad.py"], select=["VAB006"], units=True)
    path = tmp_path / "baseline.json"
    write_baseline(six.findings, path)
    both = lint_paths(
        [FIXTURES / "vab006_bad.py", FIXTURES / "vab007_bad.py"], units=True
    )
    new, resolved = diff_against_baseline(both.findings, load_baseline(path))
    assert {f.rule_id for f in new} == {"VAB007"}
    assert resolved == 0


def test_baseline_counts_resolved_debt(tmp_path):
    both = lint_paths(
        [FIXTURES / "vab006_bad.py", FIXTURES / "vab007_bad.py"], units=True
    )
    path = tmp_path / "baseline.json"
    write_baseline(both.findings, path)
    six_only = lint_paths([FIXTURES / "vab006_bad.py"], units=True)
    new, resolved = diff_against_baseline(six_only.findings, load_baseline(path))
    assert new == []
    assert resolved == len(both.findings) - len(six_only.findings)


def test_baseline_keys_ignore_line_numbers():
    f1 = Finding(path="a.py", line=5, col=0, rule_id="VAB006", message="msg")
    f2 = Finding(path="a.py", line=50, col=4, rule_id="VAB006", message="msg")
    assert finding_key(f1) == finding_key(f2)
    new, _ = diff_against_baseline([f2], Counter({finding_key(f1): 1}))
    assert new == []
    # But a second instance of the same violation is new.
    new, _ = diff_against_baseline([f1, f2], Counter({finding_key(f1): 1}))
    assert len(new) == 1 and new[0].line == 50


def test_baseline_rejects_wrong_version(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 99, "entries": {}}))
    with pytest.raises(ValueError):
        load_baseline(path)


# ---------------------------------------------------------------------------
# the unit algebra itself
# ---------------------------------------------------------------------------


def test_suffix_vocabulary():
    assert unit_from_name("snr_db") == "dB"
    assert unit_from_name("range_m") == "m"
    assert unit_from_name("alpha_db_per_km") == "dB/km"
    assert unit_from_name("loss_db_per_bounce") == "dB"
    # Bare _s is deliberately not seconds (w_s, f_s are frequencies).
    assert unit_from_name("w_s") is None
    assert unit_from_name("plain_name") is None


def test_conversion_algebra():
    assert combine_divisive("m", None, 1e3) == "km"
    assert combine_multiplicative("km", None, b_const=1e3) == "m"
    assert combine_multiplicative("dB/km", "km") == "dB"
    assert combine_multiplicative("dB/km", "m") == "dB*m/km"
    assert combine_divisive("dB*m/km", None, 1e3) == "dB"
    assert combine_multiplicative("pi-scalar", "Hz") == "rad/s"
    assert combine_additive("dB", "dB") == "dB"
    assert combine_additive("dB", "scalar") == "dB"
    assert combine_divisive("m", "s") == "m/s"
    assert combine_divisive("m", "m") == "scalar"
