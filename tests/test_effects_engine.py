"""Tier-1 tests for the effect/purity analysis engine (VAB017..VAB022).

Fixture pairs with pinned line numbers lock each rule; the vocabulary
tests lock the ``Pure``/``Effectful`` contract spelling; the cache
tests lock the incremental contract (edit one file -> only it and its
call-graph dependents re-analyze); the interprocedural tests lock
effect propagation through un-annotated callers and the declared
grants on the shipped ``sim.cache`` hot path.
"""

import json
from pathlib import Path
from typing import get_type_hints

import pytest

import repro
from repro.analysis import discover_files, lint_paths, render_catalogue, render_json
from repro.analysis.effects import (
    EFFECT_RULE_IDS,
    EFFECT_RULES,
    EffectSummary,
    EffectTag,
    Effectful,
    Pure,
    analyze_effects,
    effects_cache_path,
    run_effect_fixed_point,
    seed_effect_summaries,
)
from repro.analysis.effects.vocab import (
    ATOMS,
    HIDDEN_INPUT_ATOMS,
    SIDE_EFFECT_ATOMS,
    TAG_CONSTANTS,
)
from repro.analysis.units.symbols import extract_module

FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"

# rule id -> (bad fixture, expected finding lines in order)
EXPECTED_EFFECTS_BAD = {
    "VAB017": ("vab017_bad.py", [15, 20]),
    "VAB018": ("vab018_bad.py", [10, 16, 17, 18]),
    "VAB019": ("vab019_bad.py", [20, 21]),
    "VAB020": ("vab020_bad.py", [11, 12]),
    "VAB021": ("vab021_bad.py", [5]),
    "VAB022": ("vab022_bad.py", [8, 13]),
}


# ---------------------------------------------------------------------------
# the rules, one by one
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("rule_id", sorted(EXPECTED_EFFECTS_BAD))
def test_bad_fixture_trips_exactly_the_expected_lines(rule_id):
    name, lines = EXPECTED_EFFECTS_BAD[rule_id]
    report = lint_paths([FIXTURES / name], select=[rule_id], units=True)
    assert [f.rule_id for f in report.findings] == [rule_id] * len(lines)
    assert [f.line for f in report.findings] == lines


@pytest.mark.parametrize("rule_id", sorted(EXPECTED_EFFECTS_BAD))
def test_clean_twin_is_clean_under_every_rule(rule_id):
    name = EXPECTED_EFFECTS_BAD[rule_id][0].replace("_bad", "_clean")
    report = lint_paths([FIXTURES / name], units=True)
    assert report.clean, [f.render() for f in report.findings]


def test_effect_rule_ids_and_catalogue_agree():
    assert EFFECT_RULE_IDS == tuple(sorted(EXPECTED_EFFECTS_BAD))
    for rule_id, (name, summary) in EFFECT_RULES.items():
        assert name and summary, rule_id
        assert f"{rule_id} {name}" in render_catalogue()


def test_src_repro_is_effect_clean():
    """The acceptance gate: the shipped determinism paths carry no
    undeclared effects — every hidden input and side effect on the
    cache/ledger/parallel hot paths is covered by an explicit grant."""
    package_root = Path(repro.__file__).resolve().parent
    report = analyze_effects(discover_files([package_root]))
    assert report.clean, "\n".join(f.render() for f in report.findings)
    assert report.files > 50
    assert report.passes >= 1


# ---------------------------------------------------------------------------
# suppressions and cross-engine interplay
# ---------------------------------------------------------------------------


def test_effects_findings_respect_suppressions(tmp_path):
    src = (
        "import os\n"
        "from functools import lru_cache\n"
        "\n"
        "@lru_cache(maxsize=None)\n"
        "def cached_knob() -> str:\n"
        "    return os.getenv('K', 'x')  # vablint: disable=VAB017\n"
    )
    path = tmp_path / "suppressed.py"
    path.write_text(src)
    report = analyze_effects([path])
    assert report.clean, [f.render() for f in report.findings]


def test_units_suppression_does_not_mask_effects_findings(tmp_path):
    """A disable directive for one engine's rule must not silence a
    co-located finding from another engine: the line below carries both
    a VAB013 (shapes) and a VAB017 (effects) and disables only the
    former."""
    src = (
        "import os\n"
        "from functools import lru_cache\n"
        "from repro.analysis.shapes.vocab import ComplexShaped\n"
        "\n"
        "@lru_cache(maxsize=None)\n"
        "def peak(field: ComplexShaped['angles']) -> float:\n"
        "    return float(field[0]) + float(os.getenv('K', '0'))"
        "  # vablint: disable=VAB013\n"
    )
    path = tmp_path / "cross.py"
    path.write_text(src)
    report = lint_paths([path], units=True)
    assert [f.rule_id for f in report.findings] == ["VAB017"]

    # Without the directive both engines report on the same line.
    bare = tmp_path / "cross_bare.py"
    bare.write_text(src.replace("  # vablint: disable=VAB013", ""))
    both = lint_paths([bare], units=True)
    assert sorted(f.rule_id for f in both.findings) == ["VAB013", "VAB017"]


def test_effects_suppression_does_not_mask_shapes_findings(tmp_path):
    src = (
        "import os\n"
        "from functools import lru_cache\n"
        "from repro.analysis.shapes.vocab import ComplexShaped\n"
        "\n"
        "@lru_cache(maxsize=None)\n"
        "def peak(field: ComplexShaped['angles']) -> float:\n"
        "    return float(field[0]) + float(os.getenv('K', '0'))"
        "  # vablint: disable=VAB017\n"
    )
    path = tmp_path / "cross.py"
    path.write_text(src)
    report = lint_paths([path], units=True)
    assert [f.rule_id for f in report.findings] == ["VAB013"]


# ---------------------------------------------------------------------------
# the contract vocabulary
# ---------------------------------------------------------------------------


def test_pure_factory_builds_the_empty_grant():
    assert Pure[int].__metadata__[0] == EffectTag(())


def test_effectful_factory_validates_atoms():
    tag = Effectful[str, "reads:host", "reads:environ"].__metadata__[0]
    assert tag == EffectTag(("reads:host", "reads:environ"))
    with pytest.raises(TypeError):
        Effectful[str]  # no atoms: that's Pure's job
    with pytest.raises(TypeError):
        Effectful[str, "reads:moon"]


def test_tag_constants_cover_every_atom():
    granted = {a for tag in TAG_CONSTANTS.values() for a in tag.atoms}
    assert granted == set(ATOMS)
    assert TAG_CONSTANTS["PURE"].atoms == ()


def test_atom_partition_is_sound():
    # Hidden inputs and side effects partition the non-arg atoms;
    # mutates:arg is a side effect but never a hidden input.
    assert HIDDEN_INPUT_ATOMS & SIDE_EFFECT_ATOMS == frozenset()
    assert HIDDEN_INPUT_ATOMS | SIDE_EFFECT_ATOMS == set(ATOMS)


def test_contracts_are_inert_at_runtime():
    """Annotated modules must import and type-hint cleanly: the tags
    ride ``Annotated`` metadata, invisible to ``get_type_hints``."""
    from repro.sim.cache import cached_between
    from repro.sim.parallel import default_workers

    assert get_type_hints(default_workers)["return"] is int
    assert "return" in get_type_hints(cached_between)


def test_effect_summary_round_trips_through_json():
    summary = EffectSummary(
        qualname="m.f", path="m.py",
        effects=(("reads:environ", "os.getenv"),),
        declared=("reads:host",), has_rng_param=True, memoized=True,
        kind="function", stamped=(),
    )
    rebuilt = EffectSummary.from_dict(
        json.loads(json.dumps(summary.to_dict()))
    )
    assert rebuilt == summary


# ---------------------------------------------------------------------------
# interprocedural inference
# ---------------------------------------------------------------------------


def _write_effect_pair(tmp_path, hidden):
    producer = tmp_path / "producer.py"
    caller = tmp_path / "caller.py"
    if hidden:
        producer.write_text(
            "import os\n"
            "\n"
            "\n"
            "def knob() -> str:\n"
            '    return os.getenv("REPRO_KNOB", "x")\n'
        )
    else:
        producer.write_text(
            "def knob() -> str:\n"
            '    return "x"\n'
        )
    caller.write_text(
        "from functools import lru_cache\n"
        "\n"
        "from producer import knob\n"
        "\n"
        "\n"
        "@lru_cache(maxsize=None)\n"
        "def cached_knob() -> str:\n"
        "    return knob()\n"
    )
    return producer, caller


def test_hidden_input_propagates_to_the_memoized_caller(tmp_path):
    """knob() reads environ; the un-annotated memoized caller inherits
    the effect through the fixed point and trips VAB017 at its call
    site, in a different file from the read itself."""
    producer, caller = _write_effect_pair(tmp_path, hidden=True)
    report = analyze_effects([producer, caller])
    got = [(f.rule_id, Path(f.path).name, f.line) for f in report.findings]
    assert ("VAB017", "caller.py", 8) in got
    assert report.passes >= 2  # the chain needs propagation, not one sweep


def test_sim_cache_hot_path_carries_declared_grants():
    """The shipped memo path is annotated, not suppressed: the grants
    on ``cached_between``/``reader_node_response`` cover exactly the
    memo-store traffic, and ``_site_key`` is declared Pure."""
    path = Path(repro.__file__).resolve().parent / "sim" / "cache.py"
    info = extract_module(path, path.read_text(encoding="utf-8"))
    summaries = seed_effect_summaries([info])
    _, summaries, _ = run_effect_fixed_point([info], summaries)
    prefix = "repro.sim.cache."

    for name in ("cached_between", "reader_node_response"):
        summary = summaries[prefix + name]
        assert summary.memoized
        assert summary.declared == ("mutates:global", "reads:global")

    site_key = summaries[prefix + "_site_key"]
    assert site_key.declared == ()  # Pure
    assert site_key.memoized  # purity implies cacheability


def test_version_stamp_deletion_is_caught(tmp_path):
    """The VAB021 acceptance mechanism: start from the clean stamp
    fixture, drop one constant from the engine_versions dict, and the
    rule must fire on that constant's definition line."""
    src = (FIXTURES / "vab021_clean.py").read_text(encoding="utf-8")
    edited = src.replace('            "fastpath": FASTPATH_ENGINE_VERSION,\n', "")
    assert edited != src  # the fixture still contains the stamp entry
    path = tmp_path / "stamps.py"
    path.write_text(edited)
    report = analyze_effects([path])
    assert [(f.rule_id, f.line) for f in report.findings] == [("VAB021", 5)]
    assert "FASTPATH_ENGINE_VERSION" in report.findings[0].message


# ---------------------------------------------------------------------------
# incremental cache
# ---------------------------------------------------------------------------


def test_cache_reanalyzes_dependents_of_an_effect_edit(tmp_path):
    producer, caller = _write_effect_pair(tmp_path, hidden=True)
    cache = tmp_path / "effects_cache.json"
    files = [producer, caller]

    cold = analyze_effects(files, cache_path=cache)
    assert ("VAB017", "caller.py", 8) in [
        (f.rule_id, Path(f.path).name, f.line) for f in cold.findings
    ]
    assert sorted(Path(p).name for p in cold.analyzed) == [
        "caller.py", "producer.py",
    ]

    warm = analyze_effects(files, cache_path=cache)
    assert warm.analyzed == []
    assert sorted(Path(p).name for p in warm.reused) == [
        "caller.py", "producer.py",
    ]
    assert [f.to_dict() for f in warm.findings] == [
        f.to_dict() for f in cold.findings
    ]

    # Make the producer pure: only its bytes change, but the caller's
    # inherited effect set depends on it -> both re-analyze, both clean.
    _write_effect_pair(tmp_path, hidden=False)
    edited = analyze_effects(files, cache_path=cache)
    assert sorted(Path(p).name for p in edited.analyzed) == [
        "caller.py", "producer.py",
    ]
    assert edited.clean, [f.render() for f in edited.findings]


def test_cache_and_cold_reports_are_byte_identical(tmp_path):
    cache = tmp_path / "effects_cache.json"
    fixture = FIXTURES / "vab017_bad.py"
    cold = lint_paths([fixture], units=True)
    analyze_effects([fixture], cache_path=cache)  # prime
    warm = lint_paths([fixture], units=True)
    # Stats differ (analyzed vs reused); the findings must not.
    cold_payload = json.loads(render_json(cold))
    warm_payload = json.loads(render_json(warm))
    assert cold_payload["findings"] == warm_payload["findings"]
    assert cold_payload["counts"] == warm_payload["counts"]


def test_cache_invalidates_on_engine_version_change(tmp_path, monkeypatch):
    producer, caller = _write_effect_pair(tmp_path, hidden=True)
    cache = tmp_path / "effects_cache.json"
    analyze_effects([producer, caller], cache_path=cache)
    warm = analyze_effects([producer, caller], cache_path=cache)
    assert warm.analyzed == []

    import repro.analysis.effects.cache as effects_cache_module

    monkeypatch.setattr(effects_cache_module, "ENGINE_VERSION", "999.0.0")
    bumped = analyze_effects([producer, caller], cache_path=cache)
    assert sorted(Path(p).name for p in bumped.analyzed) == [
        "caller.py", "producer.py",
    ]
    assert bumped.engine_version == "999.0.0"


def test_effects_cache_path_derivation():
    assert effects_cache_path(None) is None
    assert effects_cache_path(
        Path("x/.vablint_units_cache.json")
    ) == Path("x/.vablint_effects_cache.json")
    assert effects_cache_path(Path("x/lint.json")) == Path("x/lint.json.effects")


def test_lint_paths_writes_the_sibling_effects_cache(tmp_path):
    units_cache = tmp_path / "units_cache.json"
    report = lint_paths(
        [FIXTURES / "vab017_bad.py"], units=True, units_cache=units_cache
    )
    assert report.units_stats is not None
    assert report.effects_stats is not None
    sibling = effects_cache_path(units_cache)
    assert units_cache.is_file() and sibling.is_file()
    payload = json.loads(sibling.read_text())
    assert payload["engine"] == report.effects_stats["engine_version"]
