"""Tests for the modulation switch, reflection operator, node, and scaling."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.placement import Pose
from repro.geometry.vec3 import Vec3
from repro.vanatta.array import VanAttaArray
from repro.vanatta.node import VanAttaNode
from repro.vanatta.reflection import reflect_waveform
from repro.vanatta.retrodirective import monostatic_gain
from repro.vanatta.scaling import (
    aperture_m,
    gain_improvement_db,
    grating_lobe_free,
    peak_gain_db,
    recommended_spacing,
)
from repro.vanatta.switching import ModulationSwitch, chips_to_waveform

F = 18_500.0


class TestSwitch:
    def test_default_depth_high(self):
        assert ModulationSwitch().modulation_depth > 0.85

    def test_amplitudes_ordered(self):
        s = ModulationSwitch()
        assert 0.0 < s.off_amplitude < s.on_amplitude <= 1.0

    def test_more_isolation_more_depth(self):
        weak = ModulationSwitch(off_isolation_db=3.0)
        strong = ModulationSwitch(off_isolation_db=30.0)
        assert strong.modulation_depth > weak.modulation_depth

    def test_max_chip_rate(self):
        s = ModulationSwitch(transition_time_s=20e-6)
        assert s.max_chip_rate_hz(0.2) == pytest.approx(10_000.0)

    def test_instant_switch_unbounded_rate(self):
        assert ModulationSwitch(transition_time_s=0.0).max_chip_rate_hz() == math.inf

    def test_switching_power(self):
        s = ModulationSwitch(gate_energy_j=2e-9)
        assert s.switching_power_w(1000.0) == pytest.approx(2e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            ModulationSwitch(insertion_loss_db=-1.0)
        with pytest.raises(ValueError):
            ModulationSwitch().max_chip_rate_hz(settle_fraction=2.0)


class TestChipWaveform:
    def test_levels(self):
        s = ModulationSwitch()
        w = chips_to_waveform([1, 0, 1], samples_per_chip=4, switch=s)
        assert len(w) == 12
        np.testing.assert_allclose(w[:4], s.on_amplitude)
        np.testing.assert_allclose(w[4:8], s.off_amplitude)

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            chips_to_waveform([0, 2], 4, ModulationSwitch())

    def test_rejects_bad_sps(self):
        with pytest.raises(ValueError):
            chips_to_waveform([1], 0, ModulationSwitch())

    def test_transition_shaping_smooths(self):
        s = ModulationSwitch(transition_time_s=1e-3)
        fs = 16_000.0
        sharp = chips_to_waveform([0, 1, 0], 16, s)
        smooth = chips_to_waveform([0, 1, 0], 16, s, fs=fs)
        # Shaped waveform has intermediate values at the transition.
        assert np.any((smooth > s.off_amplitude + 1e-6) & (smooth < s.on_amplitude - 1e-6))
        assert not np.any((sharp > s.off_amplitude + 1e-6) & (sharp < s.on_amplitude - 1e-6))

    def test_empty_chips(self):
        assert len(chips_to_waveform([], 8, ModulationSwitch())) == 0


class TestReflectWaveform:
    def test_applies_array_gain_and_modulation(self):
        arr = VanAttaArray.uniform(4, frequency_hz=F, sound_speed=1500.0)
        incident = np.ones(32, dtype=complex)
        modulation = np.concatenate([np.ones(16), np.zeros(16)])
        out = reflect_waveform(incident, modulation, arr, F, 0.0, 1500.0)
        g = monostatic_gain(arr, F, 0.0, 1500.0)
        np.testing.assert_allclose(out[:16], g)
        np.testing.assert_allclose(out[16:], 0.0)

    def test_short_modulation_padded_with_hold(self):
        arr = VanAttaArray.uniform(2, frequency_hz=F)
        incident = np.ones(10, dtype=complex)
        out = reflect_waveform(incident, np.array([0.5]), arr, F, 0.0)
        assert len(out) == 10
        assert np.allclose(np.abs(out), np.abs(out[0]))

    def test_long_modulation_truncated(self):
        arr = VanAttaArray.uniform(2, frequency_hz=F)
        incident = np.ones(4, dtype=complex)
        out = reflect_waveform(incident, np.ones(100), arr, F, 0.0)
        assert len(out) == 4


class TestNode:
    def test_defaults(self):
        node = VanAttaNode()
        assert node.array.num_elements == 4
        assert node.node_id == 1

    def test_modulation_waveform_delegates(self):
        node = VanAttaNode()
        w = node.modulation_waveform([1, 0], samples_per_chip=8)
        assert len(w) == 16

    def test_reflect_round_trip_scale(self):
        node = VanAttaNode()
        incident = np.ones(8, dtype=complex) * 2.0
        mod = np.ones(8)
        out = node.reflect(incident, mod, F, 0.0)
        expected = 2.0 * abs(monostatic_gain(node.array, F, 0.0))
        assert abs(out[0]) == pytest.approx(expected)

    def test_power_sustainability_monotone_in_level(self):
        node = VanAttaNode()
        assert node.is_power_sustainable(178.0, F)
        assert not node.is_power_sustainable(100.0, F)

    def test_average_power_includes_gate_drive(self):
        node = VanAttaNode()
        assert node.average_power_w(1000.0) > node.budget.average_power_w(1000.0)

    def test_pose_default_origin(self):
        assert VanAttaNode().pose.position == Vec3.zero()

    def test_custom_pose(self):
        node = VanAttaNode(pose=Pose(Vec3(10, 0, 3), 180.0))
        assert node.pose.position.x == 10


class TestScaling:
    def test_peak_gain_db(self):
        assert peak_gain_db(1) == 0.0
        assert peak_gain_db(2) == pytest.approx(6.02, abs=0.01)
        assert peak_gain_db(4) == pytest.approx(12.04, abs=0.01)

    def test_doubling_buys_6db(self):
        assert gain_improvement_db(2, 4) == pytest.approx(6.02, abs=0.01)

    def test_aperture(self):
        assert aperture_m(4, 0.04) == pytest.approx(0.12)

    def test_recommended_spacing_is_half_wavelength(self):
        assert recommended_spacing(18_500.0, 1480.0) == pytest.approx(0.04)

    def test_grating_lobe_condition(self):
        lam = 1500.0 / F
        assert grating_lobe_free(lam * 0.5, F)
        assert not grating_lobe_free(lam * 1.2, F)

    def test_validation(self):
        with pytest.raises(ValueError):
            peak_gain_db(0)
        with pytest.raises(ValueError):
            aperture_m(2, 0.0)
        with pytest.raises(ValueError):
            recommended_spacing(0.0)

    @given(st.integers(min_value=1, max_value=64))
    @settings(max_examples=20)
    def test_gain_monotonic_in_n(self, n):
        assert peak_gain_db(n + 1) > peak_gain_db(n)
