"""Tests for runtime physics-invariant probes (repro.obs.probes)."""

import math

import numpy as np
import pytest

import repro.sim.engine as engine_module
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.probes import (
    ProbeViolation,
    peak_component,
    probe_finite,
    probe_invariant,
    probe_mode,
    probe_signal,
    probe_unit_interval,
    probes,
    set_probe_mode,
)
from repro.sim.scenario import Scenario
from repro.sim.trials import TrialCampaign, run_campaign
from repro.vanatta.node import VanAttaNode


class TestModes:
    def test_default_mode_counts(self):
        assert probe_mode() in ("off", "count", "raise")

    def test_set_and_restore(self):
        previous = set_probe_mode("raise")
        try:
            assert probe_mode() == "raise"
        finally:
            set_probe_mode(previous)
        assert probe_mode() == previous

    def test_context_manager_restores_on_error(self):
        before = probe_mode()
        with pytest.raises(RuntimeError):
            with probes("off"):
                assert probe_mode() == "off"
                raise RuntimeError("boom")
        assert probe_mode() == before

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            set_probe_mode("loud")

    def test_off_mode_skips_checks(self):
        registry = MetricsRegistry()
        with use_registry(registry), probes("off"):
            assert probe_finite("t.off", np.array([np.nan]))
        assert registry.as_dict()["counters"] == {}


class TestPeakComponent:
    def test_real_array(self):
        assert peak_component(np.array([1.0, -3.0, 2.0])) == 3.0

    def test_complex_array_bounds_magnitude(self):
        x = np.array([3 + 4j, 1 - 2j])
        peak = peak_component(x)
        true_peak = float(np.max(np.abs(x)))
        assert peak <= true_peak <= peak * math.sqrt(2.0) + 1e-12

    def test_nan_and_inf_propagate(self):
        assert math.isnan(peak_component(np.array([1.0, np.nan])))
        assert math.isinf(peak_component(np.array([1.0 + 1j, np.inf + 0j])))

    def test_empty(self):
        assert peak_component(np.array([])) == 0.0


class TestProbePrimitives:
    def test_finite_passes_and_fails(self):
        with probes("raise"):
            assert probe_finite("t.fin", np.ones(4, dtype=np.complex128))
            with pytest.raises(ProbeViolation):
                probe_finite("t.fin", np.array([1.0, np.inf]))

    def test_count_mode_records_instead_of_raising(self):
        registry = MetricsRegistry()
        with use_registry(registry), probes("count"):
            assert not probe_finite("t.count", np.array([np.nan]))
        counters = registry.as_dict()["counters"]
        assert counters["repro.obs.probes.violations"] == 1
        assert counters["repro.obs.probes.t.count.violations"] == 1

    def test_level_ceiling(self):
        limit_db = 20.0  # amplitude 10
        quiet = np.full(8, 1.0 + 0j)
        loud = np.full(8, 1e3 + 0j)
        with probes("raise"):
            assert probe_signal("t.level", quiet, level_limit_db=limit_db)
            with pytest.raises(ProbeViolation) as err:
                probe_signal("t.level", loud, level_limit_db=limit_db)
        assert "exceeds limit" in str(err.value)

    def test_unit_interval(self):
        with probes("raise"):
            assert probe_unit_interval("t.ber", 0.0)
            assert probe_unit_interval("t.ber", 1.0)
            for bad in (-0.01, 1.01, float("nan")):
                with pytest.raises(ProbeViolation):
                    probe_unit_interval("t.ber", bad)

    def test_invariant(self):
        with probes("raise"):
            assert probe_invariant("t.inv", True, "fine")
            with pytest.raises(ProbeViolation) as err:
                probe_invariant("t.inv", False, "books do not balance",
                                stage="demod")
        assert err.value.stage == "demod"
        assert "books do not balance" in str(err.value)

    def test_attribution_picks_first_corrupt_stage(self):
        clean = np.ones(4)
        corrupt = np.array([1.0, np.nan, 1.0, 1.0])
        with probes("raise"):
            with pytest.raises(ProbeViolation) as err:
                probe_signal(
                    "t.attr", corrupt, stage="noise",
                    stage_arrays=(
                        ("channel", clean),
                        ("reflect", corrupt),
                        ("channel", corrupt),
                    ),
                )
        assert err.value.stage == "reflect"


def tiny_campaign(**kwargs):
    return TrialCampaign(trials_per_point=2, seed=21, **kwargs)


def run_one_point(campaign):
    return run_campaign([Scenario.river(range_m=60.0)], campaign)


class TestFaultInjection:
    """A NaN smuggled into the receive chain must be caught and blamed."""

    def test_nan_noise_is_caught_and_attributed_to_noise_stage(
        self, monkeypatch
    ):
        real = engine_module.colored_noise_batch

        def poisoned(*args, **kwargs):
            noise = real(*args, **kwargs)
            noise[..., noise.shape[-1] // 2] = np.nan
            return noise

        monkeypatch.setattr(engine_module, "colored_noise_batch", poisoned)
        with probes("raise"):
            with pytest.raises(ProbeViolation) as err:
                run_one_point(tiny_campaign(engine="batched"))
        assert err.value.probe == "sim.engine.record"
        assert err.value.stage == "noise"

    def test_nan_reflection_is_attributed_to_reflect_stage(
        self, monkeypatch
    ):
        real = VanAttaNode.reflect

        def poisoned(self, incident, modulation, *args, **kwargs):
            reflected = real(self, incident, modulation, *args, **kwargs)
            reflected = np.asarray(reflected, dtype=np.complex128).copy()
            reflected[..., 0] = np.nan
            return reflected

        monkeypatch.setattr(VanAttaNode, "reflect", poisoned)
        with probes("raise"):
            with pytest.raises(ProbeViolation) as err:
                run_one_point(tiny_campaign(engine="batched"))
        assert err.value.probe == "sim.engine.record"
        assert err.value.stage == "reflect"

    def test_scalar_engine_catches_nan_too(self, monkeypatch):
        real = engine_module.colored_noise

        def poisoned(*args, **kwargs):
            noise = real(*args, **kwargs)
            noise[len(noise) // 2] = np.nan
            return noise

        monkeypatch.setattr(engine_module, "colored_noise", poisoned)
        with probes("raise"):
            with pytest.raises(ProbeViolation) as err:
                run_one_point(tiny_campaign(engine="per-trial"))
        assert err.value.stage == "noise"

    def test_count_mode_surfaces_the_fault_as_metrics(self, monkeypatch):
        real = engine_module.colored_noise_batch

        def poisoned(*args, **kwargs):
            noise = real(*args, **kwargs)
            noise[..., 0] = np.nan
            return noise

        monkeypatch.setattr(engine_module, "colored_noise_batch", poisoned)
        registry = MetricsRegistry()
        with use_registry(registry), probes("count"):
            run_one_point(tiny_campaign(engine="batched"))
        counters = registry.as_dict()["counters"]
        assert counters["repro.obs.probes.violations"] >= 1
        assert (
            counters["repro.obs.probes.sim.engine.record.violations"] >= 1
        )


class TestCleanRunsStayClean:
    def test_batched_campaign_raises_nothing_under_raise_mode(self):
        with probes("raise"):
            result = run_one_point(tiny_campaign())
        assert result.points[0].trials == 2

    def test_probes_do_not_change_results(self):
        with probes("off"):
            base = run_one_point(tiny_campaign())
        with probes("raise"):
            checked = run_one_point(tiny_campaign())
        assert [p.ber for p in base.points] == [
            p.ber for p in checked.points
        ]
        assert [p.mean_snr_db for p in base.points] == [
            p.mean_snr_db for p in checked.points
        ]
