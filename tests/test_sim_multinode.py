"""Waveform-level validation of the MAC's collision assumptions."""

import numpy as np
import pytest

from repro.core import Scenario
from repro.phy.frame import FrameConfig
from repro.sim.multinode import MultiNodeResult, NodePlacement, simulate_slot
from repro.vanatta.node import VanAttaNode


def node(node_id):
    return VanAttaNode(node_id=node_id)


def scenario():
    return Scenario.river(range_m=80.0)


class TestSingleNode:
    def test_lone_node_decodes(self):
        result = simulate_slot(
            scenario(),
            [NodePlacement(node(3), 80.0, b"lonely")],
            rng=np.random.default_rng(0),
        )
        assert result.decoded_node_id == 3
        assert result.decoded_payload == b"lonely"
        assert result.num_transmitting == 1

    def test_silent_neighbour_harmless(self):
        result = simulate_slot(
            scenario(),
            [
                NodePlacement(node(3), 80.0, b"active"),
                NodePlacement(node(4), 90.0, b"quiet", responds=False),
            ],
            rng=np.random.default_rng(1),
        )
        assert result.decoded_node_id == 3
        assert result.num_transmitting == 1

    def test_round_trip_delay_modelled(self):
        """A far node's frame lands later than a near node's by the
        round-trip difference — the quantity the MAC's slot guard must
        cover. Verified indirectly: lone far nodes still decode (their
        delayed frame stays inside the record)."""
        result = simulate_slot(
            scenario(),
            [NodePlacement(node(5), 300.0, b"far away")],
            rng=np.random.default_rng(2),
        )
        assert result.decoded_node_id == 5

    def test_requires_placements(self):
        with pytest.raises(ValueError):
            simulate_slot(scenario(), [], rng=np.random.default_rng(2))


class TestCollisions:
    def collide(self, r1, r2, seed):
        return simulate_slot(
            scenario(),
            [
                NodePlacement(node(1), r1, b"frame A!", start_chip=0),
                NodePlacement(node(2), r2, b"frame B!", start_chip=0),
            ],
            rng=np.random.default_rng(seed),
        )

    def test_same_slot_collisions_are_a_geometry_lottery(self):
        """Two comparable-level frames in one slot: the outcome depends
        on how the round-trip delays interleave the chip streams (the
        propagation difference partially self-staggers the frames) and on
        the relative carrier phase. Across geometries both loss and
        capture occur — which is why the MAC treats collided slots
        statistically and retries, rather than assuming either outcome."""
        outcomes = []
        for i, (r1, r2) in enumerate(
            [(80.0, 80.5), (80.0, 81.0), (80.0, 82.0), (80.0, 84.5),
             (80.0, 87.5), (80.0, 88.0)]
        ):
            result = self.collide(r1, r2, seed=10 + i)
            outcomes.append(result.decoded_payload)
        losses = sum(1 for p in outcomes if p is None)
        captures = sum(1 for p in outcomes if p is not None)
        assert losses >= 1, "expected at least one destructive collision"
        assert captures >= 1, "expected at least one capture"
        # Any frame that *is* recovered must be intact, never a chimera.
        for p in outcomes:
            assert p in (None, b"frame A!", b"frame B!")

    def test_staggered_slots_recover_a_clean_frame(self):
        """Nodes in different slots do not destroy each other: the reader
        recovers one complete, CRC-valid frame from the record."""
        cfg = FrameConfig()
        slot_chips = cfg.frame_chips(8) + 32
        result = simulate_slot(
            scenario(),
            [
                NodePlacement(node(1), 80.0, b"slot one", start_chip=0),
                NodePlacement(node(2), 84.0, b"slot two", start_chip=slot_chips),
            ],
            rng=np.random.default_rng(4),
        )
        assert result.crc_ok
        assert result.decoded_payload in (b"slot one", b"slot two")

    def test_capture_effect(self):
        """A near node (much stronger return) captures over a far one."""
        result = simulate_slot(
            scenario(),
            [
                NodePlacement(node(1), 25.0, b"strong!!", start_chip=0),
                NodePlacement(node(2), 300.0, b"weak....", start_chip=0),
            ],
            rng=np.random.default_rng(5),
        )
        assert result.num_transmitting == 2
        assert result.decoded_node_id == 1
        assert result.decoded_payload == b"strong!!"

    def test_three_way_collision_mostly_fatal(self):
        losses = 0
        for seed in range(3):
            result = simulate_slot(
                scenario(),
                [
                    NodePlacement(node(i), 78.0 + 2.7 * i, b"payload!",
                                  start_chip=0)
                    for i in (1, 2, 3)
                ],
                rng=np.random.default_rng(30 + seed),
            )
            assert result.num_transmitting == 3
            if result.decoded_payload is None:
                losses += 1
        assert losses >= 2

    def test_deterministic_noise_free(self):
        placements = [
            NodePlacement(node(1), 80.0, b"frame A!"),
            NodePlacement(node(2), 84.0, b"frame B!"),
        ]
        a = simulate_slot(scenario(), placements, include_noise=False)
        b = simulate_slot(scenario(), placements, include_noise=False)
        assert a == b
