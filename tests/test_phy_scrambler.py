"""Tests for payload scrambling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.phy.bits import bits_from_bytes
from repro.phy.scrambler import bias, descramble, run_length_max, scramble

bit_lists = st.lists(st.integers(min_value=0, max_value=1), min_size=0, max_size=256)


class TestScramble:
    @given(bit_lists)
    @settings(max_examples=50)
    def test_involution(self, bits):
        np.testing.assert_array_equal(descramble(scramble(bits)), bits)

    def test_deterministic(self):
        bits = bits_from_bytes(b"same in, same out")
        np.testing.assert_array_equal(scramble(bits), scramble(bits))

    def test_whitens_all_zeros(self):
        zeros = np.zeros(512, dtype=np.int64)
        out = scramble(zeros)
        assert bias(out) < 0.05
        assert run_length_max(out) <= 8

    def test_whitens_all_ones(self):
        ones = np.ones(512, dtype=np.int64)
        out = scramble(ones)
        assert bias(out) < 0.05

    def test_whitens_stuck_sensor_payload(self):
        payload = bits_from_bytes(b"\x00" * 32)
        raw_run = run_length_max(payload)
        scrambled_run = run_length_max(scramble(payload))
        assert raw_run == 256
        assert scrambled_run < 10

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            scramble([0, 2, 1])

    def test_empty(self):
        assert len(scramble([])) == 0


class TestDiagnostics:
    def test_run_length(self):
        assert run_length_max([0, 0, 0, 1, 1, 0]) == 3
        assert run_length_max([1]) == 1
        assert run_length_max([]) == 0

    def test_bias(self):
        assert bias([1, 1, 1, 1]) == pytest.approx(0.5)
        assert bias([0, 1, 0, 1]) == 0.0
        assert bias([]) == 0.0


class TestScrambledFraming:
    def test_roundtrip_with_scrambling(self):
        from repro.phy.frame import FrameConfig, build_frame, parse_frame

        cfg = FrameConfig(scramble=True)
        chips = build_frame(11, b"\x00" * 16, cfg)
        frame = parse_frame(chips[len(cfg.preamble):], cfg)
        assert frame is not None
        assert frame.crc_ok
        assert frame.payload == b"\x00" * 16

    def test_on_air_bits_are_whitened(self):
        import numpy as np

        from repro.phy.coding import fm0_decode
        from repro.phy.frame import FrameConfig, build_frame
        from repro.phy.scrambler import run_length_max

        plain_cfg = FrameConfig(scramble=False)
        scr_cfg = FrameConfig(scramble=True)
        payload = b"\x00" * 24
        plain_bits, __ = fm0_decode(
            build_frame(1, payload, plain_cfg)[len(plain_cfg.preamble):]
        )
        scr_bits, __ = fm0_decode(
            build_frame(1, payload, scr_cfg)[len(scr_cfg.preamble):]
        )
        assert run_length_max(plain_bits) > 100
        assert run_length_max(scr_bits) < 20

    def test_scrambling_composes_with_fec(self):
        from repro.phy.fec import FECScheme
        from repro.phy.frame import FrameConfig, build_frame, parse_frame

        cfg = FrameConfig(scramble=True, fec=FECScheme.HAMMING74,
                          interleave_depth=8)
        chips = build_frame(2, b"stuck\x00\x00\x00sensor", cfg)
        frame = parse_frame(chips[len(cfg.preamble):], cfg)
        assert frame.crc_ok
        assert frame.payload == b"stuck\x00\x00\x00sensor"
