"""Tests for symbol timing, noise synthesis, and SNR metrics."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.acoustics.noise import NoiseConditions, total_noise_psd_db
from repro.dsp.metrics import (
    db_to_linear,
    linear_to_db,
    measure_snr_db,
    power,
    rms,
    scale_to_snr,
)
from repro.dsp.noisegen import colored_noise, white_noise
from repro.dsp.timing import (
    early_late_offset,
    resample_linear,
    symbol_samples,
    symbol_sum,
)


class TestSymbolTiming:
    def test_symbol_samples_exact(self):
        assert symbol_samples(16_000.0, 2_000.0) == 8

    def test_symbol_samples_rejects_fractional(self):
        with pytest.raises(ValueError):
            symbol_samples(16_000.0, 3_000.0)

    def test_symbol_sum_integrates(self):
        x = np.tile([1.0, 1.0, 0.0, 0.0], 3)
        out = symbol_sum(x, sps=4)
        np.testing.assert_allclose(out, [2.0, 2.0, 2.0])

    def test_symbol_sum_offset(self):
        x = np.array([9.0, 1.0, 1.0, 1.0, 1.0])
        assert symbol_sum(x, sps=4, offset=1)[0] == pytest.approx(4.0)

    def test_symbol_sum_drops_partial_tail(self):
        assert len(symbol_sum(np.ones(10), sps=4)) == 2

    def test_early_late_finds_alignment(self):
        sps = 8
        rng = np.random.default_rng(0)
        chips = rng.integers(0, 2, 64).astype(float)
        wave = np.repeat(chips, sps)
        shifted = np.concatenate([np.zeros(3), wave])
        assert early_late_offset(shifted, sps) == 3

    def test_resample_identity(self):
        x = np.linspace(0, 1, 50)
        np.testing.assert_allclose(resample_linear(x, 1.0), x, atol=1e-12)

    def test_resample_changes_length(self):
        x = np.linspace(0, 1, 100)
        assert len(resample_linear(x, 1.01)) == 101

    def test_resample_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            resample_linear(np.ones(5), 0.0)


class TestNoiseGen:
    def test_white_noise_power(self):
        rng = np.random.default_rng(1)
        x = white_noise(200_000, power=4.0, rng=rng)
        assert np.mean(np.abs(x) ** 2) == pytest.approx(4.0, rel=0.02)

    def test_white_noise_real_mode(self):
        x = white_noise(1000, 1.0, np.random.default_rng(0), complex_=False)
        assert not np.iscomplexobj(x)

    def test_white_noise_rejects_negative_power(self):
        with pytest.raises(ValueError):
            white_noise(10, -1.0)

    def test_colored_noise_total_power_matches_psd_integral(self):
        cond = NoiseConditions.coastal_ocean(3)
        fs = 16_000.0
        fc = 18_500.0
        rng = np.random.default_rng(2)
        x = colored_noise(1 << 15, fs, cond.psd_db, fc, rng)
        measured_db = 10 * math.log10(np.mean(np.abs(x) ** 2))
        # Expected: PSD at fc (roughly flat across the band) + 10log10(fs).
        expected_db = total_noise_psd_db(fc, cond) + 10 * math.log10(fs)
        assert measured_db == pytest.approx(expected_db, abs=1.5)

    def test_colored_noise_spectral_tilt(self):
        # Wenz wind noise falls with frequency: upper half of the band
        # should hold less power than the lower half.
        cond = NoiseConditions.coastal_ocean(4)
        fs = 16_000.0
        rng = np.random.default_rng(3)
        x = colored_noise(1 << 14, fs, cond.psd_db, 18_500.0, rng)
        spec = np.abs(np.fft.fft(x)) ** 2
        freqs = np.fft.fftfreq(len(x), 1 / fs)
        low = spec[(freqs < 0)].sum()   # below carrier
        high = spec[(freqs > 0)].sum()  # above carrier
        assert low > high

    def test_zero_length(self):
        assert len(colored_noise(0, 8000.0, lambda f: 50.0, 18_500.0)) == 0


class TestMetrics:
    def test_power_and_rms(self):
        x = np.array([3.0, -3.0, 3.0, -3.0])
        assert power(x) == pytest.approx(9.0)
        assert rms(x) == pytest.approx(3.0)

    def test_db_roundtrip(self):
        assert db_to_linear(linear_to_db(42.0)) == pytest.approx(42.0)

    def test_linear_to_db_floors(self):
        assert linear_to_db(0.0) == -300.0

    def test_measure_snr(self):
        rng = np.random.default_rng(4)
        noise = white_noise(100_000, 1.0, rng)
        signal = white_noise(100_000, 100.0, rng)
        est = measure_snr_db(signal + noise, noise)
        assert est == pytest.approx(20.0, abs=0.5)

    def test_scale_to_snr(self):
        rng = np.random.default_rng(5)
        signal = white_noise(50_000, 7.0, rng)
        scaled = scale_to_snr(signal, target_snr_db=13.0, noise_power=2.0)
        achieved = 10 * math.log10(power(scaled) / 2.0)
        assert achieved == pytest.approx(13.0, abs=0.1)

    def test_scale_to_snr_rejects_zero_signal(self):
        with pytest.raises(ValueError):
            scale_to_snr(np.zeros(10), 10.0, 1.0)

    @given(st.floats(min_value=-100, max_value=100))
    @settings(max_examples=20)
    def test_db_linear_inverse_property(self, db):
        assert linear_to_db(db_to_linear(db)) == pytest.approx(db, abs=1e-9)
