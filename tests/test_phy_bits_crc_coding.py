"""Tests for bit utilities, CRC, and line codes (heavy on properties)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.phy.bits import (
    bits_from_bytes,
    bits_to_bytes,
    bits_to_levels,
    pn_sequence,
    random_bits,
)
from repro.phy.coding import (
    LineCode,
    chips_per_bit,
    decode,
    encode,
    fm0_decode,
    fm0_encode,
    manchester_decode,
    manchester_encode,
    miller_decode,
    miller_encode,
)
from repro.phy.crc import crc16_ccitt, crc16_check

bit_arrays = st.lists(st.integers(min_value=0, max_value=1), min_size=0, max_size=64)


class TestBits:
    def test_bytes_roundtrip(self):
        data = bytes(range(256))
        assert bits_to_bytes(bits_from_bytes(data)) == data

    def test_msb_first(self):
        np.testing.assert_array_equal(
            bits_from_bytes(b"\x80"), [1, 0, 0, 0, 0, 0, 0, 0]
        )

    def test_bits_to_bytes_needs_multiple_of_8(self):
        with pytest.raises(ValueError):
            bits_to_bytes([1, 0, 1])

    def test_bits_to_bytes_rejects_non_binary(self):
        with pytest.raises(ValueError):
            bits_to_bytes([2] * 8)

    def test_random_bits_deterministic_with_seed(self):
        a = random_bits(100, np.random.default_rng(5))
        b = random_bits(100, np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)

    def test_pn_sequence_period_127(self):
        seq = pn_sequence(254)
        np.testing.assert_array_equal(seq[:127], seq[127:])
        # Maximal-length property: 64 ones, 63 zeros per period.
        assert seq[:127].sum() in (63, 64)

    def test_pn_rejects_zero_seed(self):
        with pytest.raises(ValueError):
            pn_sequence(10, seed=0)

    def test_levels_mapping(self):
        np.testing.assert_array_equal(bits_to_levels([0, 1]), [-1.0, 1.0])


class TestCRC:
    def test_known_vector(self):
        # CRC-16/CCITT-FALSE of ASCII "123456789" is 0x29B1.
        bits = bits_from_bytes(b"123456789")
        fcs = crc16_ccitt(bits)
        value = int("".join(str(b) for b in fcs), 2)
        assert value == 0x29B1

    def test_check_accepts_valid(self):
        bits = bits_from_bytes(b"hello vab")
        full = np.concatenate([bits, crc16_ccitt(bits)])
        assert crc16_check(full)

    def test_check_rejects_single_bit_flip(self):
        bits = bits_from_bytes(b"payload!")
        full = np.concatenate([bits, crc16_ccitt(bits)])
        for position in (0, 13, len(full) - 1):
            corrupted = full.copy()
            corrupted[position] ^= 1
            assert not crc16_check(corrupted)

    def test_check_rejects_too_short(self):
        assert not crc16_check([1, 0, 1])

    @given(bit_arrays)
    @settings(max_examples=30)
    def test_roundtrip_property(self, bits):
        full = np.concatenate([np.array(bits, dtype=np.int64), crc16_ccitt(bits)])
        assert crc16_check(full)

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            crc16_ccitt([0, 1, 2])


class TestFM0:
    @given(bit_arrays)
    @settings(max_examples=50)
    def test_roundtrip(self, bits):
        chips = fm0_encode(bits)
        decoded, violations = fm0_decode(chips)
        np.testing.assert_array_equal(decoded, bits)
        assert violations == 0

    def test_two_chips_per_bit(self):
        assert len(fm0_encode([1, 0, 1])) == 6

    def test_boundary_always_inverts(self):
        chips = fm0_encode([1, 1, 0, 0, 1, 0, 1, 1])
        pairs = chips.reshape(-1, 2)
        for i in range(1, len(pairs)):
            assert pairs[i, 0] != pairs[i - 1, 1]

    def test_dc_free(self):
        # Over random data FM0 chips are half ones (DC-free on average
        # and bounded runs).
        rng = np.random.default_rng(0)
        chips = fm0_encode(random_bits(2000, rng))
        assert abs(chips.mean() - 0.5) < 0.03
        # Longest run of identical chips in FM0 is 2.
        runs = np.diff(np.flatnonzero(np.diff(chips) != 0))
        assert runs.max() <= 2

    def test_violations_detected(self):
        chips = fm0_encode([1, 0, 1, 1]).copy()
        chips[2] ^= 1  # break the boundary rule
        __, violations = fm0_decode(chips)
        assert violations >= 1

    def test_odd_chip_count_rejected(self):
        with pytest.raises(ValueError):
            fm0_decode([1, 0, 1])

    def test_start_level(self):
        a = fm0_encode([1, 0], start_level=0)
        b = fm0_encode([1, 0], start_level=1)
        np.testing.assert_array_equal(a, 1 - b)
        with pytest.raises(ValueError):
            fm0_encode([1], start_level=2)


class TestManchester:
    @given(bit_arrays)
    @settings(max_examples=50)
    def test_roundtrip(self, bits):
        np.testing.assert_array_equal(
            manchester_decode(manchester_encode(bits)), bits
        )

    def test_always_transitions_midbit(self):
        chips = manchester_encode([1, 1, 0, 0]).reshape(-1, 2)
        assert np.all(chips[:, 0] != chips[:, 1])

    def test_invalid_symbol_rejected(self):
        with pytest.raises(ValueError):
            manchester_decode([1, 1])

    def test_exactly_dc_free(self):
        chips = manchester_encode(random_bits(501, np.random.default_rng(1)))
        assert chips.mean() == pytest.approx(0.5)


class TestMiller:
    @given(bit_arrays)
    @settings(max_examples=50)
    def test_roundtrip(self, bits):
        np.testing.assert_array_equal(miller_decode(miller_encode(bits)), bits)

    def test_one_transitions_midbit(self):
        chips = miller_encode([1]).reshape(-1, 2)
        assert chips[0, 0] != chips[0, 1]

    def test_zero_holds_midbit(self):
        chips = miller_encode([0]).reshape(-1, 2)
        assert chips[0, 0] == chips[0, 1]

    def test_zero_after_zero_transitions_at_boundary(self):
        chips = miller_encode([0, 0])
        assert chips[2] != chips[1]


class TestDispatch:
    @given(bit_arrays, st.sampled_from(list(LineCode)))
    @settings(max_examples=50)
    def test_encode_decode_inverse(self, bits, code):
        np.testing.assert_array_equal(decode(encode(bits, code), code), bits)

    def test_chips_per_bit(self):
        assert chips_per_bit(LineCode.NRZ) == 1
        for code in (LineCode.FM0, LineCode.MANCHESTER, LineCode.MILLER):
            assert chips_per_bit(code) == 2
