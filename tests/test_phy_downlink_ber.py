"""Tests for PIE downlink encoding and BER utilities."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.phy.ber import (
    ber,
    ber_ook_coherent,
    ber_ook_noncoherent,
    count_bit_errors,
    q_function,
    q_inverse,
    required_snr_db,
)
from repro.phy.downlink import PIEConfig, pie_decode, pie_encode

bit_lists = st.lists(st.integers(min_value=0, max_value=1), min_size=0, max_size=40)


class TestPIE:
    @given(bit_lists)
    @settings(max_examples=40)
    def test_roundtrip(self, bits):
        fs = 32_000.0
        env = pie_encode(bits, fs)
        decoded = pie_decode(env, fs)
        np.testing.assert_array_equal(decoded, bits)

    def test_one_longer_than_zero(self):
        fs = 32_000.0
        dur0 = len(pie_encode([0], fs))
        dur1 = len(pie_encode([1], fs))
        assert dur1 > dur0

    def test_mostly_on_for_harvesting(self):
        # PIE keeps the carrier ON most of the time so the node can
        # harvest through its own downlink.
        fs = 32_000.0
        env = pie_encode([1, 0, 1, 1, 0, 1], fs)
        assert env.mean() > 0.6

    def test_decode_is_scale_invariant(self):
        fs = 32_000.0
        env = pie_encode([1, 0, 0, 1], fs)
        np.testing.assert_array_equal(pie_decode(env * 123.0, fs), [1, 0, 0, 1])

    def test_decode_empty(self):
        assert len(pie_decode(np.zeros(0), 32_000.0)) == 0
        assert len(pie_decode(np.zeros(100), 32_000.0)) == 0

    def test_bitrate_estimate(self):
        cfg = PIEConfig(tari_s=2e-3, one_ratio=2.0, low_s=1e-3)
        # bit0 = 3 ms, bit1 = 5 ms -> mean 4 ms -> 250 bps.
        assert cfg.average_bitrate_bps() == pytest.approx(250.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PIEConfig(tari_s=0.0)
        with pytest.raises(ValueError):
            PIEConfig(one_ratio=0.9)
        with pytest.raises(ValueError):
            pie_encode([2], 32_000.0)


class TestQFunction:
    def test_q_at_zero(self):
        assert q_function(0.0) == pytest.approx(0.5)

    def test_known_point(self):
        assert q_function(3.09) == pytest.approx(1e-3, rel=0.02)

    @given(st.floats(min_value=1e-6, max_value=0.49))
    @settings(max_examples=30)
    def test_inverse_property(self, p):
        assert q_function(q_inverse(p)) == pytest.approx(p, rel=1e-6)

    def test_inverse_domain(self):
        with pytest.raises(ValueError):
            q_inverse(0.0)


class TestBERModels:
    def test_coherent_beats_noncoherent(self):
        for snr in (6.0, 9.0, 12.0):
            assert ber_ook_coherent(snr) < ber_ook_noncoherent(snr)

    def test_monotone_decreasing_in_snr(self):
        snrs = np.linspace(-5, 20, 26)
        cohs = [ber_ook_coherent(s) for s in snrs]
        assert all(b >= a for a, b in zip(cohs, cohs[1:])) is False
        assert cohs == sorted(cohs, reverse=True)

    def test_required_snr_inverts_coherent(self):
        snr = required_snr_db(1e-3, coherent=True)
        assert ber_ook_coherent(snr) == pytest.approx(1e-3, rel=1e-6)

    def test_required_snr_inverts_noncoherent(self):
        snr = required_snr_db(1e-3, coherent=False)
        assert ber_ook_noncoherent(snr) == pytest.approx(1e-3, rel=1e-6)

    def test_target_domain(self):
        with pytest.raises(ValueError):
            required_snr_db(0.6)


class TestErrorCounting:
    def test_exact_match(self):
        assert count_bit_errors([1, 0, 1], [1, 0, 1]) == 0

    def test_counts_flips(self):
        assert count_bit_errors([1, 0, 1, 1], [1, 1, 1, 0]) == 2

    def test_missing_bits_count_as_errors(self):
        assert count_bit_errors([1, 0, 1, 1], [1, 0]) == 2

    def test_extra_received_bits_ignored(self):
        assert count_bit_errors([1, 0], [1, 0, 1, 1, 1]) == 0

    def test_ber_normalises(self):
        assert ber([1, 0, 1, 1], [1, 1, 1, 0]) == pytest.approx(0.5)

    def test_ber_needs_sent_bits(self):
        with pytest.raises(ValueError):
            ber([], [1])

    @given(bit_lists.filter(lambda b: len(b) > 0))
    @settings(max_examples=30)
    def test_ber_bounded(self, bits):
        flipped = [1 - b for b in bits]
        assert ber(bits, flipped) == 1.0
        assert ber(bits, bits) == 0.0
