"""Tests for carrier-frequency-offset estimation and compensation."""

import numpy as np
import pytest

from repro.phy.receiver import ReaderReceiver

from tests.test_phy_receiver import FS, CHIP_RATE, loopback_record


def shifted(record, cfo_hz, fs=FS, leak=10.0):
    """Doppler-shift the backscatter return only.

    The projector's direct leak reaches the hydrophone over a static
    one-metre path, so drift Doppler applies to the reflected signal,
    not to the leak. ``record`` must be built with ``carrier_leak=0``.
    """
    n = np.arange(len(record))
    return record * np.exp(2j * np.pi * cfo_hz * n / fs) + leak


class TestCFOEstimation:
    def test_estimate_accuracy(self):
        rx = ReaderReceiver(fs=FS, chip_rate=CHIP_RATE)
        for cfo in (-40.0, -10.0, 0.0, 10.0, 40.0):
            record = shifted(loopback_record(noise_power=0.001, seed=1, carrier_leak=0.0), cfo)
            centred = rx.suppress_carrier(record)
            det = rx.find_preamble(centred)
            assert det is not None
            est = rx.estimate_cfo_hz(centred, det)
            assert est == pytest.approx(cfo, abs=1.5)

    def test_estimate_in_noise(self):
        rx = ReaderReceiver(fs=FS, chip_rate=CHIP_RATE)
        record = shifted(loopback_record(noise_power=0.02, seed=2, carrier_leak=0.0), 25.0)
        centred = rx.suppress_carrier(record)
        det = rx.find_preamble(centred)
        assert det is not None
        assert rx.estimate_cfo_hz(centred, det) == pytest.approx(25.0, abs=4.0)


class TestCFOCompensation:
    def test_large_offset_fails_without_compensation(self):
        # Disable the decision-directed loop too: it partially tracks
        # CFO on its own, and this test isolates the CFO estimator.
        rx = ReaderReceiver(
            fs=FS, chip_rate=CHIP_RATE, cfo_compensation=False, phase_loop_gain=0.0
        )
        record = shifted(loopback_record(payload=b"long payload here", seed=3, carrier_leak=0.0), 45.0)
        result = rx.demodulate(record)
        assert not result.success

    def test_cfo_block_alone_leaves_small_residual(self):
        """Without the phase loop, the CFO block still gets the bulk of
        the offset: the estimate is sub-hertz accurate, and the decoded
        payload starts correct (the residual only kills the frame tail,
        which the loop exists to absorb)."""
        rx = ReaderReceiver(
            fs=FS, chip_rate=CHIP_RATE, cfo_compensation=True, phase_loop_gain=0.0
        )
        record = shifted(loopback_record(payload=b"long payload here", seed=3, carrier_leak=0.0), 45.0)
        result = rx.demodulate(record)
        assert result.cfo_hz == pytest.approx(45.0, abs=1.0)
        assert result.frame is not None
        assert result.frame.payload[:4] == b"long"

    def test_large_offset_survives_with_compensation(self):
        rx = ReaderReceiver(fs=FS, chip_rate=CHIP_RATE, cfo_compensation=True)
        record = shifted(loopback_record(payload=b"long payload here", seed=3, carrier_leak=0.0), 45.0)
        result = rx.demodulate(record)
        assert result.success
        assert result.frame.payload == b"long payload here"
        assert result.cfo_hz == pytest.approx(45.0, abs=3.0)

    def test_zero_offset_unharmed(self):
        rx = ReaderReceiver(fs=FS, chip_rate=CHIP_RATE, cfo_compensation=True)
        result = rx.demodulate(loopback_record(seed=4))
        assert result.success
        assert abs(result.cfo_hz) < 2.0

    def test_negative_offset(self):
        rx = ReaderReceiver(fs=FS, chip_rate=CHIP_RATE)
        record = shifted(loopback_record(payload=b"negative cfo", seed=5, carrier_leak=0.0), -35.0)
        result = rx.demodulate(record)
        assert result.success
        assert result.cfo_hz == pytest.approx(-35.0, abs=3.0)

    def test_drift_equivalent_of_ocean_boat(self):
        """0.3 m/s round-trip drift at 18.5 kHz is ~7.4 Hz: routine."""
        rx = ReaderReceiver(fs=FS, chip_rate=CHIP_RATE)
        record = shifted(loopback_record(payload=b"ocean", seed=6, noise_power=0.01, carrier_leak=0.0), 7.4)
        result = rx.demodulate(record)
        assert result.success
