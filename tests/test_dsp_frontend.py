"""Tests for the AGC/ADC front-end model and receiver robustness to it."""

import numpy as np
import pytest

from repro.dsp.frontend import FrontEnd, clip_level_exceedance
from repro.phy.receiver import ReaderReceiver

from tests.test_phy_receiver import CHIP_RATE, FS, loopback_record


class TestFrontEnd:
    def test_agc_hits_target(self):
        fe = FrontEnd(agc_target=0.25)
        rng = np.random.default_rng(0)
        record = 37.0 * (rng.standard_normal(4000) + 1j * rng.standard_normal(4000))
        out = record * fe.agc_gain(record)
        rms = np.sqrt(np.mean(np.abs(out) ** 2))
        assert rms == pytest.approx(0.25, rel=1e-6)

    def test_quantisation_error_bounded(self):
        fe = FrontEnd(adc_bits=10, agc_enabled=False)
        rng = np.random.default_rng(1)
        record = 0.2 * (rng.standard_normal(1000) + 1j * rng.standard_normal(1000))
        out = fe.digitize(record)
        step = fe.full_scale / 2 ** (fe.adc_bits - 1)
        assert np.max(np.abs(out.real - record.real)) <= step / 2 + 1e-12
        assert np.max(np.abs(out.imag - record.imag)) <= step / 2 + 1e-12

    def test_clipping_saturates(self):
        fe = FrontEnd(adc_bits=12, agc_enabled=False, full_scale=1.0)
        record = np.array([10.0 + 10.0j, -5.0 - 0.1j])
        out = fe.digitize(record)
        assert np.all(np.abs(out.real) <= 1.0)
        assert np.all(np.abs(out.imag) <= 1.0)

    def test_more_bits_less_error(self):
        rng = np.random.default_rng(2)
        record = 0.3 * (rng.standard_normal(2000) + 1j * rng.standard_normal(2000))
        err8 = np.abs(FrontEnd(adc_bits=8, agc_enabled=False).digitize(record) - record)
        err14 = np.abs(FrontEnd(adc_bits=14, agc_enabled=False).digitize(record) - record)
        assert err14.mean() < err8.mean() / 10

    def test_dynamic_range(self):
        assert FrontEnd(adc_bits=12).dynamic_range_db() == pytest.approx(72.24)

    def test_exceedance(self):
        record = np.array([0.5 + 0j, 2.0 + 0j, 0.1 + 3j, 0.2 + 0.2j])
        assert clip_level_exceedance(record, 1.0) == pytest.approx(0.5)

    def test_empty_record(self):
        fe = FrontEnd()
        assert len(fe.digitize(np.zeros(0, complex))) == 0
        assert clip_level_exceedance(np.zeros(0, complex), 1.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FrontEnd(adc_bits=0)
        with pytest.raises(ValueError):
            FrontEnd(agc_target=0.0)
        with pytest.raises(ValueError):
            FrontEnd(full_scale=-1.0)


class TestReceiverThroughFrontEnd:
    """The DSP chain must survive a realistic digitiser."""

    def run_through(self, adc_bits, carrier_leak, noise_power=0.005):
        record = loopback_record(
            payload=b"through the adc",
            carrier_leak=carrier_leak,
            noise_power=noise_power,
            seed=9,
        )
        fe = FrontEnd(adc_bits=adc_bits)
        digitised = fe.digitize(record)
        rx = ReaderReceiver(fs=FS, chip_rate=CHIP_RATE)
        return rx.demodulate(digitised)

    def test_12_bit_adc_with_40db_carrier(self):
        result = self.run_through(adc_bits=12, carrier_leak=100.0)
        assert result.success
        assert result.frame.payload == b"through the adc"

    def test_14_bit_adc_with_60db_carrier(self):
        result = self.run_through(adc_bits=14, carrier_leak=1000.0)
        assert result.success

    def test_too_few_bits_loses_the_sidebands(self):
        # 6-bit ADC: the 60 dB carrier eats the whole quantiser range.
        result = self.run_through(adc_bits=6, carrier_leak=1000.0)
        assert not result.success

    def test_bits_vs_leak_tradeoff(self):
        """More carrier leak demands more ADC bits — the classic
        backscatter front-end constraint."""
        assert self.run_through(adc_bits=10, carrier_leak=30.0).success
        assert not self.run_through(adc_bits=6, carrier_leak=1000.0).success
