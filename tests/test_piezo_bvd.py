"""Tests for the Butterworth-Van Dyke transducer circuit model."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.piezo.bvd import BVDModel


class TestConstruction:
    def test_from_resonance_hits_target(self):
        m = BVDModel.from_resonance(18_500.0, q_factor=20.0)
        assert m.series_resonance_hz == pytest.approx(18_500.0, rel=1e-9)
        assert m.q_factor == pytest.approx(20.0, rel=1e-9)

    def test_vab_element_defaults(self):
        m = BVDModel.vab_element()
        assert m.series_resonance_hz == pytest.approx(18_500.0, rel=1e-6)

    def test_rejects_nonpositive_parameters(self):
        with pytest.raises(ValueError):
            BVDModel(c0_farad=0.0, rm_ohm=1.0, lm_henry=1.0, cm_farad=1e-9)
        with pytest.raises(ValueError):
            BVDModel.from_resonance(-5.0)

    def test_rejects_bad_radiation_fraction(self):
        with pytest.raises(ValueError):
            BVDModel.from_resonance(18_500.0, radiation_fraction=0.0)


class TestResonances:
    def test_parallel_above_series(self):
        m = BVDModel.vab_element()
        assert m.parallel_resonance_hz > m.series_resonance_hz

    def test_coupling_coefficient_in_range(self):
        m = BVDModel.vab_element()
        assert 0.0 < m.coupling_coefficient < 1.0

    def test_stronger_coupling_with_smaller_ratio(self):
        strong = BVDModel.from_resonance(18_500.0, capacitance_ratio=5.0)
        weak = BVDModel.from_resonance(18_500.0, capacitance_ratio=30.0)
        assert strong.coupling_coefficient > weak.coupling_coefficient

    def test_bandwidth_matches_q(self):
        m = BVDModel.from_resonance(18_500.0, q_factor=18.5)
        assert m.bandwidth_hz() == pytest.approx(1000.0, rel=1e-6)


class TestImpedance:
    def test_motional_branch_resistive_at_resonance(self):
        m = BVDModel.vab_element()
        z = m.motional_impedance(m.series_resonance_hz)
        assert z.imag == pytest.approx(0.0, abs=1e-6 * abs(z.real))
        assert z.real == pytest.approx(m.rm_ohm)

    def test_terminal_impedance_near_rm_at_resonance(self):
        # C0 shunts a bit; terminal resistance is slightly below Rm.
        m = BVDModel.vab_element()
        z = m.impedance(m.series_resonance_hz)
        assert 0.3 * m.rm_ohm < abs(z) <= m.rm_ohm * 1.01

    def test_capacitive_far_below_resonance(self):
        m = BVDModel.vab_element()
        z = m.impedance(1000.0)
        assert z.imag < 0  # capacitive
        assert abs(z) > abs(m.impedance(m.series_resonance_hz))

    def test_admittance_is_inverse(self):
        m = BVDModel.vab_element()
        f = 17_000.0
        assert m.admittance(f) * m.impedance(f) == pytest.approx(1.0 + 0.0j)

    def test_impedance_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            BVDModel.vab_element().impedance(0.0)

    def test_conjugate_match_absorbs_reactance(self):
        m = BVDModel.vab_element()
        f = 18_200.0
        z_match = m.conjugate_match(f)
        assert z_match.imag == pytest.approx(-m.impedance(f).imag)

    @given(st.floats(min_value=5e3, max_value=5e4))
    @settings(max_examples=30)
    def test_passive_impedance_everywhere(self, f):
        z = BVDModel.vab_element().impedance(f)
        assert z.real > 0  # passive network

    def test_radiation_resistance_fraction(self):
        m = BVDModel.from_resonance(18_500.0, radiation_fraction=0.6)
        assert m.radiation_resistance() == pytest.approx(0.6 * m.rm_ohm)

    def test_repr_mentions_resonance(self):
        assert "18500" in repr(BVDModel.vab_element())
