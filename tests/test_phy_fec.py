"""Tests for the FEC layer (Hamming, repetition, interleaving)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.phy.bits import random_bits
from repro.phy.fec import (
    FECScheme,
    code_rate,
    deinterleave,
    fec_decode,
    fec_encode,
    hamming74_decode,
    hamming74_encode,
    interleave,
    repetition3_decode,
    repetition3_encode,
)

bit_lists = st.lists(st.integers(min_value=0, max_value=1), min_size=0, max_size=64)


class TestHamming:
    @given(bit_lists)
    @settings(max_examples=40)
    def test_clean_roundtrip(self, bits):
        coded = hamming74_encode(bits)
        decoded, corrections = hamming74_decode(coded)
        pad = (-len(bits)) % 4
        np.testing.assert_array_equal(decoded[: len(bits)], bits)
        assert corrections == 0
        assert len(coded) == (len(bits) + pad) // 4 * 7

    def test_corrects_any_single_error_per_block(self):
        bits = random_bits(16, np.random.default_rng(0))
        coded = hamming74_encode(bits)
        for pos in range(len(coded)):
            corrupted = coded.copy()
            corrupted[pos] ^= 1
            decoded, corrections = hamming74_decode(corrupted)
            np.testing.assert_array_equal(decoded[:16], bits)
            assert corrections == 1

    def test_double_error_in_block_not_corrected(self):
        bits = np.array([1, 0, 1, 1])
        coded = hamming74_encode(bits)
        corrupted = coded.copy()
        corrupted[0] ^= 1
        corrupted[3] ^= 1
        decoded, __ = hamming74_decode(corrupted)
        assert not np.array_equal(decoded[:4], bits)

    def test_length_validation(self):
        with pytest.raises(ValueError):
            hamming74_decode([1, 0, 1])


class TestRepetition:
    @given(bit_lists)
    @settings(max_examples=40)
    def test_clean_roundtrip(self, bits):
        decoded, corrections = repetition3_decode(repetition3_encode(bits))
        np.testing.assert_array_equal(decoded, bits)
        assert corrections == 0

    def test_corrects_one_of_three(self):
        coded = repetition3_encode([1, 0]).copy()
        coded[1] ^= 1  # corrupt one vote of the first bit
        decoded, corrections = repetition3_decode(coded)
        np.testing.assert_array_equal(decoded, [1, 0])
        assert corrections == 1

    def test_two_of_three_loses(self):
        coded = repetition3_encode([1]).copy()
        coded[0] ^= 1
        coded[1] ^= 1
        decoded, __ = repetition3_decode(coded)
        assert decoded[0] == 0

    def test_length_validation(self):
        with pytest.raises(ValueError):
            repetition3_decode([1, 0])


class TestInterleaver:
    @given(bit_lists, st.integers(min_value=1, max_value=8))
    @settings(max_examples=40)
    def test_roundtrip(self, bits, depth):
        inter = interleave(bits, depth)
        out = deinterleave(inter, depth, len(bits))
        np.testing.assert_array_equal(out, bits)

    def test_breaks_bursts(self):
        # A burst of 4 consecutive chip errors lands in 4 different
        # Hamming blocks after deinterleaving with depth >= 4.
        bits = random_bits(32, np.random.default_rng(1))
        coded = hamming74_encode(bits)          # 56 coded bits
        inter = interleave(coded, depth=7)
        burst_start = 20
        inter[burst_start : burst_start + 4] ^= 1
        recovered = deinterleave(inter, 7, len(coded))
        decoded, corrections = hamming74_decode(recovered)
        np.testing.assert_array_equal(decoded[:32], bits)
        assert corrections == 4

    def test_burst_without_interleaver_kills_block(self):
        bits = random_bits(32, np.random.default_rng(2))
        coded = hamming74_encode(bits).copy()
        coded[0:4] ^= 1  # 4-bit burst inside one block
        decoded, __ = hamming74_decode(coded)
        assert not np.array_equal(decoded[:32], bits)

    def test_validation(self):
        with pytest.raises(ValueError):
            interleave([1, 0], 0)
        with pytest.raises(ValueError):
            deinterleave([1, 0, 1], 2, 3)


class TestDispatch:
    @given(bit_lists, st.sampled_from(list(FECScheme)))
    @settings(max_examples=40)
    def test_roundtrip_all_schemes(self, bits, scheme):
        coded = fec_encode(bits, scheme)
        decoded, corrections = fec_decode(coded, scheme)
        np.testing.assert_array_equal(decoded[: len(bits)], bits)
        assert corrections == 0

    def test_code_rates(self):
        assert code_rate(FECScheme.NONE) == 1.0
        assert code_rate(FECScheme.HAMMING74) == pytest.approx(4 / 7)
        assert code_rate(FECScheme.REPETITION3) == pytest.approx(1 / 3)

    def test_rate_matches_expansion(self):
        bits = random_bits(28, np.random.default_rng(3))
        for scheme in FECScheme:
            coded = fec_encode(bits, scheme)
            assert len(coded) == pytest.approx(len(bits) / code_rate(scheme))
