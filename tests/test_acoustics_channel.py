"""Tests for the time-domain channel application."""

import math

import numpy as np
import pytest

from repro.acoustics.channel import AcousticChannel, ChannelResponse
from repro.acoustics.constants import WaterProperties
from repro.acoustics.propagation import Path
from repro.acoustics.surface import SeaSurface
from repro.geometry.vec3 import Vec3

F = 18_500.0


def make_channel(**kwargs):
    return AcousticChannel(carrier_hz=F, water=WaterProperties.river(), **kwargs)


def single_tap_response(gain=0.5 + 0.0j, delay=0.01):
    path = Path(
        length_m=delay * 1476.0,
        delay_s=delay,
        gain=gain,
        surface_bounces=0,
        bottom_bounces=0,
        departure_deg=0.0,
        arrival_deg=0.0,
    )
    return ChannelResponse(paths=[path], carrier_hz=F)


class TestChannelResponse:
    def test_needs_at_least_one_path(self):
        with pytest.raises(ValueError):
            ChannelResponse(paths=[], carrier_hz=F)

    def test_total_gain_single_tap(self):
        h = single_tap_response(gain=0.25 + 0j)
        assert h.total_gain() == pytest.approx(0.25)
        assert h.total_gain_db() == pytest.approx(20 * math.log10(0.25))

    def test_delay_spread_zero_for_single_tap(self):
        assert single_tap_response().rms_delay_spread() == 0.0
        assert single_tap_response().coherence_bandwidth_hz() == math.inf

    def test_delay_spread_two_taps(self):
        p1 = Path(15.0, 0.01, 1.0 + 0j, 0, 0, 0.0, 0.0)
        p2 = Path(30.0, 0.02, 1.0 + 0j, 1, 0, 0.0, 0.0)
        h = ChannelResponse(paths=[p1, p2], carrier_hz=F)
        # Equal powers at +-5 ms around the mean: RMS spread is 5 ms.
        assert h.rms_delay_spread() == pytest.approx(5e-3)

    def test_apply_scales_signal(self):
        h = single_tap_response(gain=0.5 + 0j)
        x = np.ones(64, dtype=complex)
        y = h.apply(x, fs=8000.0)
        # Steady-state samples scaled by the tap gain.
        np.testing.assert_allclose(y[:64], 0.5 * x, rtol=1e-12)

    def test_apply_relative_delay_alignment(self):
        """With include_delay=False the direct tap lands at sample 0."""
        h = single_tap_response(gain=1.0 + 0j, delay=0.05)
        x = np.zeros(32, dtype=complex)
        x[0] = 1.0
        y = h.apply(x, fs=8000.0)
        assert abs(y[0]) == pytest.approx(1.0)

    def test_apply_absolute_delay(self):
        fs = 8000.0
        delay = 0.01  # exactly 80 samples
        h = single_tap_response(gain=1.0 + 0j, delay=delay)
        x = np.zeros(16, dtype=complex)
        x[0] = 1.0
        y = h.apply(x, fs, include_delay=True)
        assert abs(y[80]) == pytest.approx(1.0, abs=1e-9)
        assert np.allclose(y[:80], 0.0)

    def test_fractional_delay_splits_energy(self):
        fs = 8000.0
        h = single_tap_response(gain=1.0 + 0j, delay=1.5 / fs)
        x = np.zeros(8, dtype=complex)
        x[0] = 1.0
        y = h.apply(x, fs, include_delay=True)
        assert abs(y[1]) == pytest.approx(0.5)
        assert abs(y[2]) == pytest.approx(0.5)

    def test_multipath_superposition(self):
        p1 = Path(15.0, 0.001, 0.5 + 0j, 0, 0, 0.0, 0.0)
        p2 = Path(30.0, 0.002, 0.25 + 0j, 1, 0, 0.0, 0.0)
        h = ChannelResponse(paths=[p1, p2], carrier_hz=F)
        x = np.ones(256, dtype=complex)
        y = h.apply(x, fs=8000.0)
        # Steady state: coherent sum of both taps.
        steady = y[16:250]
        assert np.allclose(steady, 0.75, atol=1e-9)


class TestSurfaceAnimation:
    def test_static_without_waves(self):
        h = single_tap_response()
        t1 = h.baseband_taps(0.0)
        t2 = h.baseband_taps(3.0)
        assert t1 == t2

    def test_surface_path_phase_moves(self):
        path = Path(100.0, 0.07, 0.5 + 0j, 1, 0, 5.0, -5.0)
        h = ChannelResponse(
            paths=[path],
            carrier_hz=F,
            surface=SeaSurface(rms_height_m=0.3, dominant_period_s=6.0),
        )
        g0 = h.baseband_taps(0.0)[0][1]
        g1 = h.baseband_taps(1.5)[0][1]
        assert abs(g0) == pytest.approx(abs(g1))  # magnitude preserved
        assert g0 != g1  # phase moved

    def test_animated_apply_preserves_energy_scale(self):
        path = Path(100.0, 0.07, 0.5 + 0j, 1, 0, 5.0, -5.0)
        h = ChannelResponse(
            paths=[path],
            carrier_hz=F,
            surface=SeaSurface(rms_height_m=0.2, dominant_period_s=4.0),
        )
        x = np.ones(4000, dtype=complex)
        y = h.apply(x, fs=8000.0, time_varying=True)
        steady = np.abs(y[10:4000])
        assert steady.mean() == pytest.approx(0.5, rel=0.05)


class TestAcousticChannel:
    def test_between_traces_paths(self):
        ch = make_channel()
        h = ch.between(Vec3(0, 0, 2), Vec3(60, 0, 2))
        assert len(h.paths) >= 3

    def test_direct_only_flag(self):
        ch = make_channel(direct_only=True)
        h = ch.between(Vec3(0, 0, 2), Vec3(60, 0, 2))
        assert len(h.paths) == 1

    def test_gain_decreases_with_range(self):
        ch = make_channel(direct_only=True)
        g_near = ch.one_way_gain_db(Vec3(0, 0, 2), Vec3(20, 0, 2))
        g_far = ch.one_way_gain_db(Vec3(0, 0, 2), Vec3(200, 0, 2))
        assert g_far < g_near

    def test_default_surface_calm(self):
        ch = make_channel()
        assert ch.surface.rms_height_m == 0.0
