"""Tests for array geometry, pairing, and polarity schemes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.vanatta.array import VanAttaArray, linear_positions, mirror_pairs
from repro.vanatta.polarity import (
    PairingScheme,
    coherence_loss_db,
    pair_phase_errors,
)


class TestPositions:
    def test_centred(self):
        pos = linear_positions(4, 0.04)
        assert pos.sum() == pytest.approx(0.0)

    def test_uniform_pitch(self):
        pos = linear_positions(5, 0.04)
        np.testing.assert_allclose(np.diff(pos), 0.04)

    def test_single_element_at_origin(self):
        assert linear_positions(1, 0.04)[0] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            linear_positions(0, 0.04)
        with pytest.raises(ValueError):
            linear_positions(4, -1.0)


class TestMirrorPairs:
    def test_even_count(self):
        assert mirror_pairs(4) == [(0, 3), (1, 2)]

    def test_odd_count_self_pairs_centre(self):
        pairs = mirror_pairs(5)
        assert (2, 2) in pairs
        assert len(pairs) == 3

    @given(st.integers(min_value=1, max_value=32))
    def test_every_element_exactly_once(self, n):
        seen = []
        for a, b in mirror_pairs(n):
            seen.append(a)
            if a != b:
                seen.append(b)
        assert sorted(seen) == list(range(n))


class TestVanAttaArray:
    def test_uniform_default_half_wavelength(self):
        arr = VanAttaArray.uniform(4, frequency_hz=18_500.0, sound_speed=1480.0)
        lam = 1480.0 / 18_500.0
        assert arr.spacing_m == pytest.approx(lam / 2.0)

    def test_mirror_symmetry(self):
        assert VanAttaArray.uniform(4).is_mirror_symmetric()
        assert VanAttaArray.uniform(5).is_mirror_symmetric()

    def test_aperture(self):
        arr = VanAttaArray.uniform(4, spacing_m=0.04)
        assert arr.aperture_m == pytest.approx(0.12)

    def test_counts(self):
        arr = VanAttaArray.uniform(6)
        assert arr.num_elements == 6
        assert arr.num_pairs == 3

    def test_rejects_duplicate_membership(self):
        with pytest.raises(ValueError):
            VanAttaArray(
                positions_m=linear_positions(4, 0.04), pairs=((0, 3), (1, 3))
            )

    def test_rejects_unpaired_elements(self):
        with pytest.raises(ValueError):
            VanAttaArray(positions_m=linear_positions(4, 0.04), pairs=((0, 3),))

    def test_rejects_out_of_range_pairs(self):
        with pytest.raises(ValueError):
            VanAttaArray(positions_m=linear_positions(2, 0.04), pairs=((0, 5),))

    def test_line_gain_from_loss(self):
        arr = VanAttaArray.uniform(4)
        assert arr.line_gain() == pytest.approx(10 ** (-arr.line_loss_db / 20))

    def test_cross_polarity_phases_zero(self):
        arr = VanAttaArray.uniform(4, pairing=PairingScheme.CROSS_POLARITY)
        np.testing.assert_allclose(arr.pair_phases(), 0.0)

    def test_direct_pairing_alternates_pi(self):
        arr = VanAttaArray.uniform(8, pairing=PairingScheme.DIRECT)
        phases = arr.pair_phases()
        np.testing.assert_allclose(phases, [0, np.pi, 0, np.pi])


class TestPolarity:
    def test_cross_polarity_no_loss(self):
        errors = pair_phase_errors(4, PairingScheme.CROSS_POLARITY)
        assert coherence_loss_db(errors) == pytest.approx(0.0)

    def test_direct_pairing_costly(self):
        errors = pair_phase_errors(4, PairingScheme.DIRECT)
        # Two pairs cancel the other two: total decoherence.
        assert coherence_loss_db(errors) > 20.0

    def test_random_pairing_lossy_but_reproducible(self):
        e1 = pair_phase_errors(6, PairingScheme.RANDOM, seed=3)
        e2 = pair_phase_errors(6, PairingScheme.RANDOM, seed=3)
        np.testing.assert_array_equal(e1, e2)
        assert coherence_loss_db(e1) > 0.5

    def test_empty_is_lossless(self):
        assert coherence_loss_db(np.zeros(0)) == 0.0

    @given(st.integers(min_value=1, max_value=16))
    @settings(max_examples=20)
    def test_loss_nonnegative(self, n):
        for scheme in PairingScheme:
            errors = pair_phase_errors(n, scheme)
            assert coherence_loss_db(errors) >= -1e-9
