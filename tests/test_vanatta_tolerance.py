"""Tests for manufacturing-tolerance analysis."""

import numpy as np
import pytest

from repro.vanatta.array import VanAttaArray
from repro.vanatta.tolerance import (
    monte_carlo_gain,
    perturbed_array,
    position_tolerance_for_loss,
)

F = 18_500.0
C = 1480.0


def base_array():
    return VanAttaArray.uniform(4, frequency_hz=F, sound_speed=C)


class TestPerturbedArray:
    def test_zero_sigma_is_identity(self):
        base = base_array()
        built = perturbed_array(base, 0.0, 0.0, np.random.default_rng(0))
        np.testing.assert_array_equal(built.positions_m, base.positions_m)
        assert built.line_phase_rad == base.line_phase_rad

    def test_jitter_moves_positions(self):
        base = base_array()
        built = perturbed_array(base, 2e-3, 0.0, np.random.default_rng(1))
        assert not np.array_equal(built.positions_m, base.positions_m)
        # Small jitter: still roughly the same aperture.
        assert built.aperture_m == pytest.approx(base.aperture_m, abs=0.02)

    def test_preserves_wiring(self):
        base = base_array()
        built = perturbed_array(base, 1e-3, 0.1, np.random.default_rng(2))
        assert built.pairs == base.pairs
        assert built.pairing == base.pairing


class TestMonteCarloGain:
    def test_no_perturbation_no_loss(self):
        result = monte_carlo_gain(base_array(), F, instances=20)
        assert result.loss_vs_ideal_db == pytest.approx(0.0, abs=1e-9)
        assert result.std_gain_db == pytest.approx(0.0, abs=1e-9)

    def test_loss_grows_with_jitter(self):
        losses = []
        for sigma in (1e-3, 4e-3, 12e-3):
            result = monte_carlo_gain(
                base_array(), F, position_sigma_m=sigma, instances=150
            )
            losses.append(result.loss_vs_ideal_db)
        assert losses == sorted(losses)
        assert losses[-1] > 0.5

    def test_millimetre_build_is_safe(self):
        """A 1 mm potting tolerance costs well under a dB — buildable."""
        result = monte_carlo_gain(
            base_array(), F, position_sigma_m=1e-3, instances=200
        )
        assert result.loss_vs_ideal_db < 0.5

    def test_line_phase_spread_costs_gain(self):
        clean = monte_carlo_gain(base_array(), F, instances=100)
        noisy = monte_carlo_gain(
            base_array(), F, line_phase_sigma_rad=0.8, instances=100
        )
        # A common line phase rotates all pairs together: monostatic
        # magnitude is invariant... unless combined with jitter. Verify
        # the invariance (a design fact worth pinning).
        assert noisy.mean_gain_db == pytest.approx(clean.mean_gain_db, abs=0.1)

    def test_worst_below_mean(self):
        result = monte_carlo_gain(
            base_array(), F, position_sigma_m=4e-3, instances=200
        )
        assert result.worst_gain_db <= result.mean_gain_db

    def test_deterministic(self):
        a = monte_carlo_gain(base_array(), F, position_sigma_m=2e-3, seed=5)
        b = monte_carlo_gain(base_array(), F, position_sigma_m=2e-3, seed=5)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            monte_carlo_gain(base_array(), F, instances=0)


class TestToleranceBudget:
    def test_returns_buildable_number(self):
        sigma = position_tolerance_for_loss(base_array(), F, max_loss_db=1.0)
        lam = C / F
        # The answer should be a real machining tolerance: somewhere
        # between a tenth of a millimetre and a quarter wavelength.
        assert 1e-4 < sigma < lam / 2
        # And it should actually meet the budget.
        result = monte_carlo_gain(
            base_array(), F, position_sigma_m=sigma, instances=150
        )
        assert result.loss_vs_ideal_db <= 1.2

    def test_tighter_budget_tighter_tolerance(self):
        loose = position_tolerance_for_loss(base_array(), F, max_loss_db=2.0)
        tight = position_tolerance_for_loss(base_array(), F, max_loss_db=0.3)
        assert tight < loose

    def test_validation(self):
        with pytest.raises(ValueError):
            position_tolerance_for_loss(base_array(), F, max_loss_db=0.0)
