"""Tests for correlation, matched filtering, and envelope detection."""

import numpy as np
import pytest

from repro.dsp.correlate import (
    correlate_full,
    matched_filter,
    normalized_correlation,
    peak_to_sidelobe,
)
from repro.dsp.envelope import envelope_detect, rectify_smooth


class TestCorrelate:
    def test_peak_at_template_position(self):
        rng = np.random.default_rng(3)
        template = rng.standard_normal(32)
        signal = np.concatenate([np.zeros(40), template, np.zeros(40)])
        corr = correlate_full(signal, template)
        assert int(np.argmax(np.abs(corr))) == 40

    def test_short_signal_gives_empty(self):
        assert len(correlate_full(np.zeros(4), np.ones(10))) == 0

    def test_normalized_peak_is_one_for_exact_match(self):
        rng = np.random.default_rng(4)
        template = rng.standard_normal(64) + 1j * rng.standard_normal(64)
        signal = np.concatenate([np.zeros(16, complex), template, np.zeros(16, complex)])
        corr = normalized_correlation(signal, template)
        assert corr.max() == pytest.approx(1.0, abs=1e-9)
        assert int(np.argmax(corr)) == 16

    def test_normalized_invariant_to_scale(self):
        rng = np.random.default_rng(5)
        template = rng.standard_normal(64)
        signal = np.concatenate([0.01 * rng.standard_normal(50), 7.0 * template])
        corr_big = normalized_correlation(signal, template)
        corr_small = normalized_correlation(signal * 1e-4, template)
        np.testing.assert_allclose(corr_big, corr_small, rtol=1e-6)

    def test_normalized_bounded(self):
        rng = np.random.default_rng(6)
        template = rng.standard_normal(32)
        signal = rng.standard_normal(500)
        corr = normalized_correlation(signal, template)
        assert np.all(corr <= 1.0 + 1e-9)
        assert np.all(corr >= 0.0)

    def test_zero_energy_template_rejected(self):
        with pytest.raises(ValueError):
            normalized_correlation(np.ones(100), np.zeros(10))

    def test_matched_filter_is_correlation(self):
        rng = np.random.default_rng(7)
        pulse = rng.standard_normal(16)
        signal = rng.standard_normal(100)
        np.testing.assert_allclose(
            matched_filter(signal, pulse), correlate_full(signal, pulse)
        )

    def test_matched_filter_maximizes_snr_at_pulse(self):
        rng = np.random.default_rng(8)
        pulse = rng.standard_normal(64)
        signal = np.concatenate([np.zeros(100), pulse, np.zeros(100)])
        signal = signal + 0.1 * rng.standard_normal(len(signal))
        out = matched_filter(signal, pulse)
        assert int(np.argmax(np.abs(out))) == 100


class TestPeakToSidelobe:
    def test_clean_peak(self):
        corr = np.zeros(100)
        corr[50] = 10.0
        corr[10] = 1.0
        assert peak_to_sidelobe(corr) == pytest.approx(10.0)

    def test_guard_excluded(self):
        corr = np.zeros(100)
        corr[50] = 10.0
        corr[51] = 9.0  # inside guard
        corr[10] = 2.0
        assert peak_to_sidelobe(corr, guard=2) == pytest.approx(5.0)

    def test_all_zero_sidelobes(self):
        corr = np.zeros(10)
        corr[5] = 1.0
        assert peak_to_sidelobe(corr) == float("inf")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            peak_to_sidelobe(np.zeros(0))


class TestEnvelope:
    def test_envelope_of_rotating_phasor_is_flat(self):
        t = np.arange(1000)
        x = 2.5 * np.exp(2j * np.pi * 0.01 * t)
        env = envelope_detect(x)
        assert np.allclose(env, 2.5)

    def test_rectify_smooth_tracks_ook(self):
        fs = 8000.0
        sps = 80
        chips = np.repeat([1.0, 0.0, 1.0, 1.0, 0.0, 1.0], sps)
        x = chips * np.exp(2j * np.pi * 100.0 * np.arange(len(chips)) / fs)
        env = rectify_smooth(x, fs, cutoff_hz=400.0)
        mid = sps // 2
        highs = env[mid::sps][np.array([0, 2, 3, 5])]
        lows = env[mid::sps][np.array([1, 4])]
        assert highs.min() > 0.7
        assert lows.max() < 0.3

    def test_rectify_smooth_rejects_bad_cutoff(self):
        with pytest.raises(ValueError):
            rectify_smooth(np.ones(10), 8000.0, 4000.0)
