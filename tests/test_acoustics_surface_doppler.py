"""Tests for sea-surface state and Doppler utilities."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.acoustics.doppler import apply_doppler, doppler_factor, doppler_shift_hz
from repro.acoustics.surface import SeaSurface

F = 18_500.0


class TestSeaSurface:
    def test_calm_is_perfect_mirror(self):
        s = SeaSurface.calm()
        r = s.reflection_coefficient(F, math.radians(10.0))
        assert r == pytest.approx(-1.0)

    def test_roughness_reduces_coherent_reflection(self):
        rough = SeaSurface(rms_height_m=0.5)
        r = rough.reflection_coefficient(F, math.radians(30.0))
        assert abs(r) < 1.0

    def test_rougher_is_weaker(self):
        grazing = math.radians(20.0)
        mags = [
            abs(SeaSurface(rms_height_m=h).reflection_coefficient(F, grazing))
            for h in (0.0, 0.1, 0.3, 0.6)
        ]
        assert mags == sorted(mags, reverse=True)

    def test_grazing_dependence(self):
        # Shallower grazing sees a smoother surface (smaller Rayleigh
        # parameter), hence stronger coherent reflection.
        s = SeaSurface(rms_height_m=0.3)
        shallow = abs(s.reflection_coefficient(F, math.radians(2.0)))
        steep = abs(s.reflection_coefficient(F, math.radians(60.0)))
        assert shallow > steep

    def test_from_wind_scales(self):
        calm = SeaSurface.from_wind(1.0)
        storm = SeaSurface.from_wind(15.0)
        assert storm.rms_height_m > calm.rms_height_m * 10

    def test_sea_state_presets_ordered(self):
        heights = [SeaSurface.from_sea_state(s).rms_height_m for s in range(7)]
        assert heights == sorted(heights)

    def test_displacement_zero_when_calm(self):
        assert SeaSurface.calm().displacement(1.234) == 0.0

    def test_displacement_bounded_by_amplitude(self):
        s = SeaSurface(rms_height_m=0.4, dominant_period_s=5.0)
        for t in np.linspace(0, 10, 100):
            assert abs(s.displacement(t)) <= s.amplitude_m + 1e-12

    def test_velocity_is_displacement_derivative(self):
        s = SeaSurface(rms_height_m=0.4, dominant_period_s=5.0)
        t, dt = 1.7, 1e-6
        numeric = (s.displacement(t + dt) - s.displacement(t - dt)) / (2 * dt)
        assert s.vertical_velocity(t) == pytest.approx(numeric, rel=1e-4)

    def test_doppler_shift_grows_with_sea_state(self):
        grazing = math.radians(10.0)
        shifts = [
            SeaSurface.from_sea_state(s).max_doppler_shift_hz(F, grazing)
            for s in range(7)
        ]
        assert shifts[0] == 0.0
        assert all(b >= a for a, b in zip(shifts, shifts[1:]))


class TestDoppler:
    def test_shift_sign(self):
        assert doppler_shift_hz(F, 1.0) > 0
        assert doppler_shift_hz(F, -1.0) < 0

    def test_shift_magnitude(self):
        # 1 m/s at 18.5 kHz in 1500 m/s water ~ 12.3 Hz.
        assert doppler_shift_hz(F, 1.0, 1500.0) == pytest.approx(12.33, abs=0.05)

    def test_factor_is_v_over_c(self):
        assert doppler_factor(15.0, 1500.0) == pytest.approx(0.01)

    def test_apply_zero_velocity_is_identity(self):
        x = np.exp(1j * np.linspace(0, 10, 256))
        y = apply_doppler(x, 8000.0, F, 0.0)
        np.testing.assert_array_equal(x, y)

    def test_apply_rotates_carrier(self):
        fs = 16_000.0
        n = 4096
        x = np.ones(n, dtype=complex)
        v = 0.5
        y = apply_doppler(x, fs, F, v)
        # Measure the dominant baseband frequency.
        spec = np.fft.fft(y)
        freqs = np.fft.fftfreq(n, 1 / fs)
        peak = freqs[np.argmax(np.abs(spec))]
        assert peak == pytest.approx(doppler_shift_hz(F, v), abs=fs / n * 2)

    def test_apply_preserves_length_and_energy(self):
        # Use a band-limited (smooth) signal: linear interpolation is
        # energy-preserving only below the Nyquist-ish band edge.
        n = np.arange(1000)
        x = np.exp(2j * np.pi * 50.0 * n / 16_000.0)
        y = apply_doppler(x, 16_000.0, F, 1.0)
        assert len(y) == len(x)
        assert np.mean(np.abs(y) ** 2) == pytest.approx(
            np.mean(np.abs(x) ** 2), rel=0.02
        )

    @given(st.floats(min_value=-3.0, max_value=3.0))
    def test_apply_finite(self, v):
        x = np.ones(128, dtype=complex)
        y = apply_doppler(x, 16_000.0, F, v)
        assert np.all(np.isfinite(y))
