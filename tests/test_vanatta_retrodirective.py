"""Tests for the retrodirective array response — the core physics claim.

The invariants here *are* the paper's Section-3 story: an N-element Van
Atta reflects coherently back toward any source direction (gain ~ N in
field), while a conventional reflector of the same aperture only does so
at broadside.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.conventional_array import conventional_monostatic_gain_db
from repro.baselines.mirror import ideal_monostatic_gain_db
from repro.piezo.transducer import Transducer
from repro.vanatta.array import VanAttaArray
from repro.vanatta.polarity import PairingScheme
from repro.vanatta.retrodirective import (
    monostatic_gain,
    monostatic_gain_db,
    monostatic_pattern_db,
    pattern,
    response,
)

F = 18_500.0
C = 1500.0


def ideal_array(n=4):
    """Array with lossless lines and omni elements (pure geometry)."""
    base = VanAttaArray.uniform(n, frequency_hz=F, sound_speed=C)
    return VanAttaArray(
        positions_m=base.positions_m,
        pairs=base.pairs,
        element=Transducer(elevation_rolloff_exponent=0.0),
        pairing=PairingScheme.CROSS_POLARITY,
        line_loss_db=0.0,
    )


class TestRetrodirectivity:
    def test_broadside_gain_is_n(self):
        for n in (1, 2, 4, 8):
            arr = ideal_array(n)
            assert abs(monostatic_gain(arr, F, 0.0, C)) == pytest.approx(n, rel=1e-9)

    @given(st.floats(min_value=-75.0, max_value=75.0))
    @settings(max_examples=40)
    def test_monostatic_gain_flat_across_angle(self, theta):
        """THE core property: retrodirective gain is angle-independent."""
        arr = ideal_array(4)
        assert abs(monostatic_gain(arr, F, theta, C)) == pytest.approx(4.0, rel=1e-9)

    def test_odd_array_also_retrodirective(self):
        arr = ideal_array(5)
        for theta in (0.0, 20.0, 45.0):
            assert abs(monostatic_gain(arr, F, theta, C)) == pytest.approx(
                5.0, rel=1e-9
            )

    def test_db_form(self):
        arr = ideal_array(4)
        assert monostatic_gain_db(arr, F, 30.0, C) == pytest.approx(
            20 * math.log10(4.0), abs=1e-6
        )

    def test_matches_ideal_mirror_bound(self):
        arr = ideal_array(8)
        assert monostatic_gain_db(arr, F, 10.0, C) <= ideal_monostatic_gain_db(8) + 1e-9

    def test_element_rolloff_drops_wide_angles(self):
        arr = VanAttaArray.uniform(4, frequency_hz=F, sound_speed=C)  # cos^0.5
        g0 = monostatic_gain_db(arr, F, 0.0, C)
        g60 = monostatic_gain_db(arr, F, 60.0, C)
        assert 2.0 < g0 - g60 < 10.0

    def test_line_loss_discounts_gain(self):
        lossless = ideal_array(4)
        lossy = VanAttaArray(
            positions_m=lossless.positions_m,
            pairs=lossless.pairs,
            element=Transducer(elevation_rolloff_exponent=0.0),
            line_loss_db=2.0,
        )
        delta = monostatic_gain_db(lossless, F, 15.0, C) - monostatic_gain_db(
            lossy, F, 15.0, C
        )
        assert delta == pytest.approx(2.0, abs=1e-9)


class TestPairingAblation:
    def test_direct_pairing_loses_gain_at_broadside(self):
        good = ideal_array(4)
        bad = VanAttaArray(
            positions_m=good.positions_m,
            pairs=good.pairs,
            element=Transducer(elevation_rolloff_exponent=0.0),
            pairing=PairingScheme.DIRECT,
            line_loss_db=0.0,
        )
        # Two pairs in phase, two flipped: complete cancellation.
        assert abs(monostatic_gain(bad, F, 0.0, C)) == pytest.approx(0.0, abs=1e-9)
        assert abs(monostatic_gain(good, F, 0.0, C)) == pytest.approx(4.0)

    def test_random_pairing_below_cross_polarity(self):
        good = ideal_array(8)
        rnd = VanAttaArray(
            positions_m=good.positions_m,
            pairs=good.pairs,
            element=Transducer(elevation_rolloff_exponent=0.0),
            pairing=PairingScheme.RANDOM,
            line_loss_db=0.0,
        )
        assert abs(monostatic_gain(rnd, F, 0.0, C)) < abs(
            monostatic_gain(good, F, 0.0, C)
        )


class TestBistaticPattern:
    def test_peak_points_back_at_source(self):
        arr = ideal_array(4)
        thetas = np.linspace(-90, 90, 361)
        for theta_in in (0.0, 25.0, -40.0):
            p = np.abs(pattern(arr, F, theta_in, thetas, C))
            peak_angle = thetas[int(np.argmax(p))]
            assert peak_angle == pytest.approx(theta_in, abs=2.0)

    def test_reciprocity_in_out_swap(self):
        arr = ideal_array(4)
        a = response(arr, F, 17.0, -33.0, C)
        b = response(arr, F, -33.0, 17.0, C)
        assert a == pytest.approx(b)


class TestConventionalComparison:
    def test_conventional_matches_van_atta_at_broadside(self):
        arr = ideal_array(4)
        conv = conventional_monostatic_gain_db(arr.positions_m, F, 0.0, C)
        va = monostatic_gain_db(arr, F, 0.0, C)
        assert conv == pytest.approx(va, abs=1e-9)

    def test_conventional_collapses_off_broadside(self):
        """The E1 contrast: conventional loses >10 dB by 30 degrees."""
        arr = ideal_array(4)
        va_30 = monostatic_gain_db(arr, F, 30.0, C)
        conv_30 = conventional_monostatic_gain_db(arr.positions_m, F, 30.0, C)
        assert va_30 - conv_30 > 10.0

    def test_pattern_sweep_shapes(self):
        arr = ideal_array(4)
        thetas = np.linspace(-60, 60, 41)
        va = monostatic_pattern_db(arr, F, thetas, C)
        conv = np.array(
            [conventional_monostatic_gain_db(arr.positions_m, F, t, C) for t in thetas]
        )
        # Van Atta stays within a few dB of its peak across the sweep;
        # conventional swings by tens of dB.
        assert va.max() - va.min() < 8.0
        assert conv.max() - conv.min() > 25.0
