"""Tests for transducer calibration and load-reflection math."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.piezo.bvd import BVDModel
from repro.piezo.matching import (
    OPEN_CIRCUIT,
    SHORT_CIRCUIT,
    mismatch_loss_db,
    modulation_depth,
    modulation_depth_for,
    power_wave_reflection,
    reflection_states,
)
from repro.piezo.transducer import Transducer


class TestTransducerResponse:
    def test_tvr_peaks_at_resonance(self):
        t = Transducer()
        fs = t.bvd.series_resonance_hz
        assert t.tvr_db(fs) == pytest.approx(t.tvr_peak_db, abs=0.2)
        assert t.tvr_db(fs * 0.8) < t.tvr_peak_db - 3.0

    def test_rvs_follows_same_shape(self):
        t = Transducer()
        fs = t.bvd.series_resonance_hz
        drop_tvr = t.tvr_peak_db - t.tvr_db(fs * 1.1)
        drop_rvs = t.rvs_peak_db - t.rvs_db(fs * 1.1)
        assert drop_tvr == pytest.approx(drop_rvs, rel=1e-9)

    def test_source_level_scales_with_voltage(self):
        t = Transducer()
        fs = t.bvd.series_resonance_hz
        sl1 = t.source_level_db(1.0, fs)
        sl10 = t.source_level_db(10.0, fs)
        assert sl10 - sl1 == pytest.approx(20.0)

    def test_source_level_rejects_bad_voltage(self):
        with pytest.raises(ValueError):
            Transducer().source_level_db(0.0, 18_500.0)

    def test_received_voltage_matches_sensitivity(self):
        t = Transducer()
        fs = t.bvd.series_resonance_hz
        # 160 dB re 1 uPa at -193 dB re 1V/uPa -> -33 dBV ~ 22.4 mV.
        v = t.received_voltage_rms(160.0, fs)
        assert 20 * math.log10(v) == pytest.approx(160.0 + t.rvs_peak_db, abs=0.2)

    def test_element_gain_broadside_unity(self):
        assert Transducer().element_gain(0.0) == pytest.approx(1.0)

    def test_element_gain_rolls_off(self):
        t = Transducer()
        assert t.element_gain(60.0) < t.element_gain(30.0) < 1.0

    def test_element_gain_endfire_zero(self):
        assert Transducer().element_gain(90.0) == 0.0

    def test_omni_element_flat(self):
        t = Transducer(elevation_rolloff_exponent=0.0)
        assert t.element_gain(80.0) == pytest.approx(1.0)

    def test_effective_aperture(self):
        t = Transducer()
        lam = 1500.0 / 18_500.0
        assert t.effective_aperture_m2(18_500.0) == pytest.approx(
            lam**2 / (4 * math.pi)
        )


class TestReflection:
    def test_matched_load_absorbs(self):
        z_t = complex(100.0, 40.0)
        gamma = power_wave_reflection(z_t.conjugate(), z_t)
        assert abs(gamma) == pytest.approx(0.0, abs=1e-12)

    def test_open_and_short_fully_reflect(self):
        z_t = complex(250.0, -80.0)
        assert abs(power_wave_reflection(OPEN_CIRCUIT, z_t)) == pytest.approx(
            1.0, abs=1e-6
        )
        assert abs(power_wave_reflection(SHORT_CIRCUIT, z_t)) == pytest.approx(
            1.0, abs=1e-2
        )

    @given(
        st.floats(min_value=1.0, max_value=1e5),
        st.floats(min_value=-1e4, max_value=1e4),
    )
    @settings(max_examples=40)
    def test_passive_loads_bounded(self, r, x):
        z_t = BVDModel.vab_element().impedance(18_500.0)
        gamma = power_wave_reflection(complex(r, x), z_t)
        assert abs(gamma) <= 1.0 + 1e-9

    def test_default_states_give_high_depth(self):
        bvd = BVDModel.vab_element()
        g_on, g_off = reflection_states(bvd, bvd.series_resonance_hz)
        assert abs(g_off) == pytest.approx(0.0, abs=1e-9)  # conjugate match
        depth = modulation_depth(g_on, g_off)
        assert depth > 0.4

    def test_modulation_depth_maximal_for_open_short(self):
        assert modulation_depth(1.0 + 0j, -1.0 + 0j) == pytest.approx(1.0)

    def test_depth_for_wrapper(self):
        bvd = BVDModel.vab_element()
        f = bvd.series_resonance_hz
        g_on, g_off = reflection_states(bvd, f)
        assert modulation_depth_for(bvd, f) == pytest.approx(
            modulation_depth(g_on, g_off)
        )

    def test_mismatch_loss(self):
        assert mismatch_loss_db(0.0 + 0j) == pytest.approx(0.0)
        # |Gamma| = 0.707 -> half the power reflected -> 3 dB.
        assert mismatch_loss_db(complex(math.sqrt(0.5), 0)) == pytest.approx(
            3.01, abs=0.02
        )
