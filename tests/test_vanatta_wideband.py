"""Tests for the wideband system-response analysis."""

import numpy as np
import pytest

from repro.piezo.bvd import BVDModel
from repro.vanatta.array import VanAttaArray
from repro.vanatta.wideband import (
    max_chip_rate_for_bandwidth,
    system_response,
    usable_bandwidth_hz,
)

F0 = 18_500.0


def make_response(q_factor=18.0, theta=0.0):
    bvd = BVDModel.from_resonance(F0, q_factor=q_factor)
    array = VanAttaArray.uniform(4, frequency_hz=F0, sound_speed=1480.0)
    freqs = np.linspace(0.85 * F0, 1.15 * F0, 201)
    return system_response(array, bvd, freqs, theta_deg=theta, sound_speed=1480.0)


class TestSystemResponse:
    def test_peak_near_resonance(self):
        r = make_response()
        peak_f = r.frequencies_hz[int(np.argmax(r.total_db))]
        assert peak_f == pytest.approx(F0, rel=0.02)

    def test_total_normalised_to_zero_peak(self):
        r = make_response()
        assert r.total_db.max() == pytest.approx(0.0)

    def test_element_rolls_off_both_sides(self):
        r = make_response()
        assert r.element_db[0] < -6.0
        assert r.element_db[-1] < -6.0

    def test_depth_degrades_off_design(self):
        r = make_response()
        centre = int(np.argmax(r.total_db))
        assert r.depth_db[0] < r.depth_db[centre] + 0.1

    def test_array_gain_flat_across_band(self):
        # Retrodirectivity is geometry-frequency-forgiving near f0: the
        # mirror-pair conjugation holds exactly at every frequency.
        r = make_response(theta=25.0)
        assert r.array_db.max() - r.array_db.min() < 1.5

    def test_needs_grid(self):
        bvd = BVDModel.vab_element()
        arr = VanAttaArray.uniform(4)
        with pytest.raises(ValueError):
            system_response(arr, bvd, [F0])


class TestBandwidth:
    def test_bandwidth_positive_and_sub_resonance(self):
        bw = usable_bandwidth_hz(BVDModel.from_resonance(F0, q_factor=18.0))
        assert 200.0 < bw < F0

    def test_higher_q_narrower(self):
        wide = usable_bandwidth_hz(BVDModel.from_resonance(F0, q_factor=8.0))
        narrow = usable_bandwidth_hz(BVDModel.from_resonance(F0, q_factor=40.0))
        assert narrow < wide

    def test_bandwidth_tracks_fs_over_q_scale(self):
        q = 18.0
        bw = usable_bandwidth_hz(BVDModel.from_resonance(F0, q_factor=q))
        # Composite (element^2 x depth) is tighter than the raw fs/Q
        # electrical bandwidth but within a small factor of it.
        assert F0 / q / 6.0 < bw < F0 / q * 2.0

    def test_drop_level_widens_band(self):
        bvd = BVDModel.from_resonance(F0, q_factor=18.0)
        bw3 = usable_bandwidth_hz(bvd, drop_db=3.0)
        bw10 = usable_bandwidth_hz(bvd, drop_db=10.0)
        assert bw10 > bw3

    def test_supports_design_chip_rate(self):
        """The default 2 kchip/s PHY must fit the default element's band
        (at a relaxed 6 dB drop) — the self-consistency check between the
        piezo model and the PHY defaults."""
        bw = usable_bandwidth_hz(BVDModel.vab_element(), drop_db=6.0)
        assert max_chip_rate_for_bandwidth(bw) >= 900.0


class TestChipRate:
    def test_simple_mapping(self):
        assert max_chip_rate_for_bandwidth(4_000.0, rolloff=1.0) == 2_000.0

    def test_validation(self):
        with pytest.raises(ValueError):
            max_chip_rate_for_bandwidth(0.0)
        with pytest.raises(ValueError):
            max_chip_rate_for_bandwidth(1_000.0, rolloff=-0.5)
