"""Tests for link adaptation."""

import pytest

from repro.core import Scenario, default_vab_budget
from repro.link.adaptive import (
    DEFAULT_MODES,
    PhyMode,
    adaptive_goodput_bps,
    chip_error_probability,
    frame_delivery_probability,
    mode_goodput_bps,
    select_mode,
)
from repro.phy.fec import FECScheme


def budget():
    return default_vab_budget(Scenario.river())


def mode_by_name(name):
    return next(m for m in DEFAULT_MODES if m.name == name)


class TestPhyMode:
    def test_information_rate(self):
        assert PhyMode("x", 2_000.0).information_rate_bps() == pytest.approx(1_000.0)
        fec = PhyMode("y", 2_000.0, FECScheme.HAMMING74)
        assert fec.information_rate_bps() == pytest.approx(1_000.0 * 4 / 7)

    def test_frame_config_carries_fec(self):
        cfg = PhyMode("y", 2_000.0, FECScheme.HAMMING74, 8).frame_config()
        assert cfg.fec is FECScheme.HAMMING74
        assert cfg.interleave_depth == 8


class TestChipError:
    def test_grows_with_range(self):
        b = budget()
        mode = mode_by_name("nominal")
        assert chip_error_probability(b, mode, 100.0) < chip_error_probability(
            b, mode, 400.0
        )

    def test_faster_mode_errs_sooner(self):
        b = budget()
        fast = mode_by_name("fast")
        slow = mode_by_name("slow")
        r = 380.0
        assert chip_error_probability(b, fast, r) > chip_error_probability(
            b, slow, r
        )


class TestFrameDelivery:
    def test_near_certain_close(self):
        b = budget()
        for mode in DEFAULT_MODES:
            assert frame_delivery_probability(b, mode, 50.0) > 0.999

    def test_fec_helps_at_the_cliff(self):
        b = budget()
        plain = mode_by_name("nominal")
        coded = mode_by_name("nominal+fec")
        r = 370.0
        assert frame_delivery_probability(b, coded, r) > frame_delivery_probability(
            b, plain, r
        )

    def test_bounded(self):
        b = budget()
        for r in (10.0, 200.0, 500.0, 1_000.0):
            for mode in DEFAULT_MODES:
                p = frame_delivery_probability(b, mode, r)
                assert 0.0 <= p <= 1.0


class TestModeSelection:
    def test_fast_wins_close(self):
        mode = select_mode(budget(), 50.0)
        assert mode.name == "fast"

    def test_slow_or_coded_wins_far(self):
        mode = select_mode(budget(), 430.0)
        assert mode is not None
        assert mode.chip_rate < 4_000.0

    def test_none_when_out_of_range(self):
        assert select_mode(budget(), 1_500.0) is None

    def test_requires_modes(self):
        with pytest.raises(ValueError):
            select_mode(budget(), 100.0, modes=())


class TestAdaptiveEnvelope:
    def test_adaptive_at_least_best_fixed(self):
        b = budget()
        for r in (50.0, 150.0, 300.0, 400.0, 450.0):
            adaptive = adaptive_goodput_bps(b, r)
            for mode in DEFAULT_MODES:
                if frame_delivery_probability(b, mode, r) >= 0.5:
                    assert adaptive >= mode_goodput_bps(b, mode, r) - 1e-9

    def test_adaptive_extends_usable_range(self):
        b = budget()
        fast = mode_by_name("fast")
        r = 400.0
        assert adaptive_goodput_bps(b, r) > mode_goodput_bps(b, fast, r)

    def test_zero_beyond_every_mode(self):
        assert adaptive_goodput_bps(budget(), 2_000.0) == 0.0
