"""Tests for downlink commands, the node FSM, and command-level inventory."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.link.commands import (
    COMMAND_BITS,
    Command,
    Opcode,
    crc4,
    decode_command,
    encode_command,
)
from repro.link.node_fsm import NodeController, NodeState
from repro.link.protocol import CommandLevelInventory, read_selected
from repro.phy.downlink import pie_decode, pie_encode


class TestCommands:
    def test_roundtrip_all_opcodes(self):
        for cmd in (
            Command.query(3),
            Command.query_rep(),
            Command.ack(42),
            Command.select(7),
            Command.sleep(2),
        ):
            bits = encode_command(cmd)
            assert len(bits) == COMMAND_BITS
            assert decode_command(bits) == cmd

    @given(st.sampled_from(list(Opcode)), st.integers(min_value=0, max_value=255))
    @settings(max_examples=40)
    def test_roundtrip_property(self, opcode, arg):
        cmd = Command(opcode, arg)
        assert decode_command(encode_command(cmd)) == cmd

    def test_single_bit_flip_rejected(self):
        bits = encode_command(Command.ack(9))
        for pos in range(COMMAND_BITS):
            corrupted = bits.copy()
            corrupted[pos] ^= 1
            decoded = decode_command(corrupted)
            assert decoded != Command.ack(9)

    def test_bad_length_rejected(self):
        assert decode_command([1, 0, 1]) is None

    def test_unknown_opcode_rejected(self):
        # Craft bits with opcode 0xF and a valid CRC.
        body = [1, 1, 1, 1] + [0] * 8
        fcs = crc4(body)
        bits = body + [(fcs >> (3 - i)) & 1 for i in range(4)]
        assert decode_command(bits) is None

    def test_through_pie_waveform(self):
        """Commands survive the actual PIE envelope round trip."""
        fs = 32_000.0
        for cmd in (Command.query(4), Command.ack(200), Command.sleep(1)):
            env = pie_encode(encode_command(cmd), fs)
            bits = pie_decode(env, fs)
            assert decode_command(bits) == cmd

    def test_validation(self):
        with pytest.raises(ValueError):
            Command(Opcode.ACK, 300)
        with pytest.raises(ValueError):
            Command.query(16)


class TestNodeFSM:
    def test_query_slot_zero_responds(self):
        node = NodeController(node_id=1, seed=0)
        # q=0 -> window of 1 -> always slot 0.
        assert node.on_command(Command.query(0))
        assert node.state is NodeState.REPLIED

    def test_ack_moves_to_inventoried(self):
        node = NodeController(node_id=5, seed=0)
        node.on_command(Command.query(0))
        node.on_command(Command.ack(5))
        assert node.state is NodeState.INVENTORIED
        # Inventoried nodes stay silent.
        assert not node.on_command(Command.query(0))

    def test_ack_for_other_node_ignored(self):
        node = NodeController(node_id=5, seed=0)
        node.on_command(Command.query(0))
        node.on_command(Command.ack(6))
        assert node.state is NodeState.REPLIED

    def test_arbitration_counts_down(self):
        node = NodeController(node_id=3, seed=1)
        # Find a seed/window where the first draw is not slot 0.
        responded = node.on_command(Command.query(4))
        if responded:
            pytest.skip("seed drew slot 0; covered elsewhere")
        slots = node.slot_counter
        for __ in range(slots - 1):
            assert not node.on_command(Command.query_rep())
        assert node.on_command(Command.query_rep())
        assert node.state is NodeState.REPLIED

    def test_select_overrides_arbitration(self):
        node = NodeController(node_id=9, seed=0)
        node.on_command(Command.select(9))
        for __ in range(5):
            assert node.on_command(Command.query(4))
            node.state = NodeState.READY

    def test_select_other_silences(self):
        node = NodeController(node_id=9, seed=0)
        node.on_command(Command.select(4))
        assert not node.selected

    def test_select_zero_clears(self):
        node = NodeController(node_id=9, seed=0)
        node.on_command(Command.select(9))
        node.on_command(Command.select(0))
        assert not node.selected

    def test_sleep_and_wake(self):
        node = NodeController(node_id=2, seed=0)
        node.on_command(Command.sleep(1))  # 2 superframes
        assert node.state is NodeState.ASLEEP
        assert not node.on_command(Command.query(0))
        node.on_superframe()
        assert node.state is NodeState.ASLEEP
        node.on_superframe()
        assert node.state is NodeState.READY
        assert node.on_command(Command.query(0))

    def test_lost_command_ignored(self):
        node = NodeController(node_id=2, seed=0)
        assert not node.on_command(None)
        assert node.state is NodeState.READY

    def test_reset_inventory(self):
        node = NodeController(node_id=2, seed=0)
        node.on_command(Command.query(0))
        node.on_command(Command.ack(2))
        node.reset_inventory()
        assert node.state is NodeState.READY

    def test_validation(self):
        with pytest.raises(ValueError):
            NodeController(node_id=0)


class TestCommandLevelInventory:
    def make_nodes(self, n, seed=3):
        return [NodeController(node_id=i, seed=seed) for i in range(1, n + 1)]

    def test_reads_everyone_clean(self):
        nodes = self.make_nodes(6)
        trace = CommandLevelInventory(q=3, seed=4).run(nodes)
        assert sorted(trace.inventoried) == [1, 2, 3, 4, 5, 6]
        assert all(n.state is NodeState.INVENTORIED for n in nodes)

    def test_slot_accounting(self):
        nodes = self.make_nodes(4)
        trace = CommandLevelInventory(q=2, seed=5).run(nodes)
        assert trace.slots_single >= 4  # at least one per read
        assert trace.total_slots > 0
        assert trace.acks_sent == len(trace.inventoried)

    def test_downlink_loss_slows_but_completes(self):
        clean_nodes = self.make_nodes(5, seed=6)
        lossy_nodes = self.make_nodes(5, seed=6)
        clean = CommandLevelInventory(q=3, seed=7).run(clean_nodes)
        lossy = CommandLevelInventory(q=3, seed=7, downlink_loss=0.2).run(lossy_nodes)
        assert sorted(lossy.inventoried) == [1, 2, 3, 4, 5]
        assert lossy.commands_sent >= clean.commands_sent

    def test_uplink_loss_retries(self):
        nodes = self.make_nodes(3, seed=8)
        trace = CommandLevelInventory(q=2, seed=9, uplink_loss=0.3).run(nodes)
        assert sorted(trace.inventoried) == [1, 2, 3]

    def test_deterministic(self):
        t1 = CommandLevelInventory(q=2, seed=10).run(self.make_nodes(4, seed=11))
        t2 = CommandLevelInventory(q=2, seed=10).run(self.make_nodes(4, seed=11))
        assert t1.inventoried == t2.inventoried
        assert t1.commands_sent == t2.commands_sent

    def test_requires_nodes(self):
        with pytest.raises(ValueError):
            CommandLevelInventory().run([])


class TestSelectedPolling:
    def test_perfect_polling(self):
        node = NodeController(node_id=7, seed=0)
        assert read_selected(node, rounds=10) == 10

    def test_lossy_polling(self):
        node = NodeController(node_id=7, seed=0)
        reads = read_selected(node, rounds=200, downlink_loss=0.25, seed=3)
        assert 100 < reads < 190
