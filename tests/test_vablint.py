"""Tier-1 tests for ``repro.analysis`` (vablint) and its entry points.

One fixture module per rule carries known violations with pinned line
numbers, next to a clean twin that must pass the *full* rule set; the
suite also locks the suppression syntax, the exit-code contract, the
CLI surfaces (``tools/vablint.py`` and ``repro lint``), and — the point
of the whole exercise — that ``src/repro`` itself lints clean.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro import cli
from repro.analysis import (
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_FINDINGS,
    SuppressionIndex,
    lint_paths,
    lint_source,
    make_rules,
    render_json,
    rule_catalogue,
    tree_fingerprint,
)
from repro.analysis.findings import PARSE_ERROR_RULE

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"
VABLINT = REPO_ROOT / "tools" / "vablint.py"

ALL_RULES = ("VAB001", "VAB002", "VAB003", "VAB004", "VAB005")

# rule id -> (bad fixture, expected finding lines in order)
EXPECTED_BAD = {
    "VAB001": ("vab001_bad.py", [6, 11, 12]),
    "VAB002": ("vab002_bad.py", [8, 17]),
    "VAB003": ("vab003_bad.py", [6, 10, 15, 19]),
    "VAB004": ("vab004_bad.py", [7, 11]),
    "VAB005": ("vab005_bad.py", [4, 4, 9, 14, 14, 18]),
}


def run_vablint(*args):
    """Run the standalone CLI; returns (exit_code, stdout, stderr)."""
    proc = subprocess.run(
        [sys.executable, str(VABLINT), *args],
        capture_output=True, text=True, cwd=str(REPO_ROOT),
    )
    return proc.returncode, proc.stdout, proc.stderr


# ---------------------------------------------------------------------------
# the rules, one by one
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("rule_id", ALL_RULES)
def test_bad_fixture_trips_exactly_the_expected_lines(rule_id):
    name, lines = EXPECTED_BAD[rule_id]
    report = lint_paths([FIXTURES / name], select=[rule_id])
    assert [f.rule_id for f in report.findings] == [rule_id] * len(lines)
    assert [f.line for f in report.findings] == lines
    assert report.exit_code == EXIT_FINDINGS


@pytest.mark.parametrize("rule_id", ALL_RULES)
def test_clean_twin_is_clean_under_every_rule(rule_id):
    name = EXPECTED_BAD[rule_id][0].replace("_bad", "_clean")
    report = lint_paths([FIXTURES / name])
    assert report.clean, [f.render() for f in report.findings]
    assert report.exit_code == EXIT_CLEAN


def test_vab004_exempts_obs_directories():
    exempt = FIXTURES / "obs" / "clock_exempt.py"
    assert lint_paths([exempt], select=["VAB004"]).clean
    # The same source outside an obs/ directory is a violation.
    findings = lint_source(
        exempt.read_text(), path="repro/sim/clock.py",
        rules=make_rules(select=["VAB004"]),
    )
    assert [f.rule_id for f in findings] == ["VAB004"]


def test_findings_carry_message_and_render():
    report = lint_paths([FIXTURES / "vab001_bad.py"], select=["VAB001"])
    first = report.findings[0]
    assert "default_rng" in first.message
    assert first.render().startswith(f"{first.path}:{first.line}:")
    assert "VAB001" in first.render()


# ---------------------------------------------------------------------------
# suppression
# ---------------------------------------------------------------------------


def test_line_suppression_and_all_sentinel():
    report = lint_paths([FIXTURES / "suppressed_lines.py"])
    assert report.clean
    # Without the comments, both sites are VAB001 violations.
    stripped = "\n".join(
        line.split("  #")[0]
        for line in (FIXTURES / "suppressed_lines.py").read_text().splitlines()
    )
    findings = lint_source(stripped, rules=make_rules(select=["VAB001"]))
    assert len(findings) == 2


def test_file_level_suppression():
    report = lint_paths([FIXTURES / "suppressed_file.py"])
    assert report.clean


def test_bare_disable_suppresses_every_rule():
    """``# vablint: disable`` with no rule list means disable=all."""
    report = lint_paths([FIXTURES / "suppressed_bare.py"])
    assert report.clean
    index = SuppressionIndex.from_source("import x  # vablint: disable\n")
    assert index.is_suppressed(1, "VAB001")
    assert index.is_suppressed(1, "VAB999")
    # The bare form is line-scoped, not file-scoped.
    assert not index.is_suppressed(2, "VAB001")


def test_bare_disable_file_suppresses_everywhere():
    index = SuppressionIndex.from_source("# vablint: disable-file\nimport x\n")
    assert index.is_suppressed(1, "VAB001")
    assert index.is_suppressed(99, "VAB004")


def test_suppression_index_ignores_strings():
    index = SuppressionIndex.from_source(
        's = "# vablint: disable=VAB001"\nimport numpy\n'
    )
    assert not index.is_suppressed(1, "VAB001")


# ---------------------------------------------------------------------------
# exit codes and parse errors
# ---------------------------------------------------------------------------


def test_broken_file_yields_vab000_and_exit_2():
    report = lint_paths([FIXTURES / "broken_syntax.py"])
    assert report.findings == []
    assert [e.rule_id for e in report.errors] == [PARSE_ERROR_RULE]
    assert report.errors[0].is_error
    assert report.exit_code == EXIT_ERROR


def test_missing_path_raises():
    with pytest.raises(FileNotFoundError):
        lint_paths([FIXTURES / "does_not_exist.py"])


def test_unknown_rule_id_raises():
    with pytest.raises(KeyError):
        make_rules(select=["VAB999"])


# ---------------------------------------------------------------------------
# the tree itself, the catalogue, fingerprints
# ---------------------------------------------------------------------------


def test_src_repro_lints_clean():
    """The acceptance gate: the shipped library has zero violations."""
    package_root = Path(repro.__file__).resolve().parent
    report = lint_paths([package_root])
    assert report.clean, "\n".join(f.render() for f in report.findings)
    assert report.files > 50
    assert report.rules == list(ALL_RULES)


def test_rule_catalogue_is_complete():
    catalogue = rule_catalogue()
    assert tuple(sorted(catalogue)) == ALL_RULES
    for rule_cls in catalogue.values():
        assert rule_cls.summary


def test_tree_fingerprint_is_deterministic_and_flags_dirt():
    clean = tree_fingerprint([FIXTURES / "vab003_clean.py"])
    again = tree_fingerprint([FIXTURES / "vab003_clean.py"])
    dirty = tree_fingerprint([FIXTURES / "vab003_bad.py"])
    assert clean["fingerprint"] == again["fingerprint"]
    assert clean["clean"] and not dirty["clean"]
    assert clean["fingerprint"] != dirty["fingerprint"]
    assert clean["rules"] == list(ALL_RULES)


def test_render_json_schema():
    report = lint_paths([FIXTURES / "vab005_bad.py"], select=["VAB005"])
    payload = json.loads(render_json(report))
    assert payload["clean"] is False
    assert payload["files"] == 1
    assert payload["counts"] == {"VAB005": 6}
    assert {f["rule"] for f in payload["findings"]} == {"VAB005"}


# ---------------------------------------------------------------------------
# CLI surfaces
# ---------------------------------------------------------------------------


def test_vablint_cli_exit_code_contract():
    code, out, _ = run_vablint(str(FIXTURES / "vab001_clean.py"))
    assert code == EXIT_CLEAN and "clean" in out
    code, out, _ = run_vablint(str(FIXTURES / "vab001_bad.py"))
    assert code == EXIT_FINDINGS and "VAB001" in out
    code, _, err = run_vablint(str(FIXTURES / "no_such_dir"))
    assert code == EXIT_ERROR and err


def test_vablint_cli_json_and_select():
    code, out, _ = run_vablint(
        "--json", "--select", "VAB003", str(FIXTURES / "vab003_bad.py")
    )
    assert code == EXIT_FINDINGS
    payload = json.loads(out)
    assert payload["rules"] == ["VAB003"]
    assert [f["line"] for f in payload["findings"]] == [6, 10, 15, 19]


def test_vablint_cli_default_tree_is_clean():
    code, out, _ = run_vablint()
    assert code == EXIT_CLEAN, out


def test_repro_lint_subcommand(capsys):
    assert cli.main(["lint", str(FIXTURES / "vab002_clean.py")]) == EXIT_CLEAN
    assert cli.main(["lint", str(FIXTURES / "vab002_bad.py")]) == EXIT_FINDINGS
    out = capsys.readouterr().out
    assert "VAB002" in out


def test_repro_lint_catalogue_and_fingerprint(capsys):
    assert cli.main(["lint", "--catalogue"]) == 0
    out = capsys.readouterr().out
    for rule_id in ALL_RULES:
        assert rule_id in out
    assert cli.main(
        ["lint", "--fingerprint", str(FIXTURES / "vab004_clean.py")]
    ) == 0
    record = json.loads(capsys.readouterr().out)
    assert record["clean"] is True and record["fingerprint"]


def test_bench_perf_lint_gate():
    sys.path.insert(0, str(REPO_ROOT / "tools"))
    try:
        import bench_perf
    finally:
        sys.path.pop(0)
    record = bench_perf.lint_gate(allow_dirty=False)
    assert record is not None and record["clean"] is True


# ---------------------------------------------------------------------------
# discovery excludes
# ---------------------------------------------------------------------------


def test_discover_files_excludes_fixture_tree_by_default():
    from repro.analysis import discover_files

    files = discover_files([REPO_ROOT / "tests"])
    assert files, "discovery found nothing under tests/"
    assert not any("lint_fixtures" in f.as_posix() for f in files)


def test_discover_files_exclude_override_and_custom_globs():
    from repro.analysis import discover_files

    # An empty exclude list restores the fixtures.
    files = discover_files([REPO_ROOT / "tests"], exclude=[])
    assert any("lint_fixtures" in f.as_posix() for f in files)
    # Custom globs stack on file names too.
    files = discover_files([REPO_ROOT / "tests"], exclude=["test_vablint*"])
    assert not any(f.name.startswith("test_vablint") for f in files)


def test_discover_files_never_excludes_named_files():
    from repro.analysis import discover_files

    target = FIXTURES / "vab001_bad.py"
    assert discover_files([target]) == [target]


# ---------------------------------------------------------------------------
# the units engine through the CLIs
# ---------------------------------------------------------------------------


def test_vablint_cli_units_flag(tmp_path):
    cache = tmp_path / "cache.json"
    code, out, _ = run_vablint(
        "--units", "--units-cache", str(cache),
        str(FIXTURES / "vab009_bad.py"),
    )
    assert code == EXIT_FINDINGS
    assert "VAB009" in out
    code, out, _ = run_vablint(
        "--units", "--no-units-cache", str(FIXTURES / "vab009_clean.py")
    )
    assert code == EXIT_CLEAN
    assert "units: engine" in out


def test_vablint_cli_baseline_workflow(tmp_path):
    baseline = tmp_path / "baseline.json"
    bad = str(FIXTURES / "vab006_bad.py")
    # Capture current debt.
    code, _, err = run_vablint(
        "--units", "--no-units-cache", "--baseline", str(baseline),
        "--update-baseline", bad,
    )
    assert code == EXIT_CLEAN and "wrote baseline" in err
    # Same tree now gates clean.
    code, _, err = run_vablint(
        "--units", "--no-units-cache", "--baseline", str(baseline), bad,
    )
    assert code == EXIT_CLEAN and "absorbed" in err
    # A new violation elsewhere still fails.
    code, out, _ = run_vablint(
        "--units", "--no-units-cache", "--baseline", str(baseline),
        bad, str(FIXTURES / "vab007_bad.py"),
    )
    assert code == EXIT_FINDINGS
    assert "VAB007" in out and "VAB006" not in out


def test_vablint_cli_update_baseline_requires_baseline():
    code, _, err = run_vablint("--update-baseline", str(FIXTURES / "vab001_clean.py"))
    assert code == EXIT_ERROR and "--baseline" in err


def test_catalogue_lists_unit_rules():
    code, out, _ = run_vablint("--catalogue")
    assert code == 0
    for rule_id in ("VAB006", "VAB007", "VAB008", "VAB009", "VAB010"):
        assert rule_id in out


def test_repro_lint_units_flags(capsys):
    assert cli.main(
        ["lint", "--units", "--no-units-cache", "--json",
         str(FIXTURES / "vab010_bad.py")]
    ) == EXIT_FINDINGS
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts"] == {"VAB010": 2}
    assert payload["units"]["engine_version"]
    assert "VAB010" in payload["rules"]
