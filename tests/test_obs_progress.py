"""Tests for live progress reporting (repro.obs.progress)."""

import io
import threading

from repro.obs.manifest import EventLog, read_events
from repro.obs.progress import ProgressReporter, progress_enabled
from repro.sim.parallel import run_observed_campaign
from repro.sim.scenario import Scenario
from repro.sim.sweep import sweep_range
from repro.sim.trials import TrialCampaign


class FakeTTY(io.StringIO):
    def isatty(self):
        return True


class TestAutodetect:
    def test_plain_stream_is_disabled(self, monkeypatch):
        monkeypatch.delenv("VAB_PROGRESS", raising=False)
        monkeypatch.delenv("CI", raising=False)
        assert not progress_enabled(io.StringIO())

    def test_tty_is_enabled(self, monkeypatch):
        monkeypatch.delenv("VAB_PROGRESS", raising=False)
        monkeypatch.delenv("CI", raising=False)
        assert progress_enabled(FakeTTY())

    def test_ci_disables_even_a_tty(self, monkeypatch):
        monkeypatch.delenv("VAB_PROGRESS", raising=False)
        monkeypatch.setenv("CI", "true")
        assert not progress_enabled(FakeTTY())

    def test_env_forces_on_and_off(self, monkeypatch):
        monkeypatch.setenv("VAB_PROGRESS", "1")
        assert progress_enabled(io.StringIO())
        monkeypatch.setenv("VAB_PROGRESS", "0")
        assert not progress_enabled(FakeTTY())


class TestReporter:
    def test_line_shows_counts_and_rate(self):
        buf = io.StringIO()
        with ProgressReporter(
            10, label="camp", stream=buf, enabled=True, min_interval_s=0.0
        ) as reporter:
            reporter.advance(4)
            reporter.advance(6)
        text = buf.getvalue()
        assert "camp: 10/10 trials" in text
        assert "trials/s" in text
        assert text.endswith("\n")  # finish() terminates the live line

    def test_disabled_reporter_writes_nothing(self):
        buf = io.StringIO()
        with ProgressReporter(10, stream=buf, enabled=False) as reporter:
            reporter.advance(10)
        assert buf.getvalue() == ""

    def test_heartbeats_flow_to_event_log_even_when_display_off(
        self, tmp_path
    ):
        log_path = tmp_path / "events.jsonl"
        with EventLog(log_path) as events:
            with ProgressReporter(
                6, stream=io.StringIO(), enabled=False, events=events,
                min_interval_s=0.0,
            ) as reporter:
                reporter.advance(2)
                reporter.advance(4)
        beats = [
            e for e in read_events(log_path) if e["event"] == "heartbeat"
        ]
        assert beats
        assert beats[-1]["done"] == 6
        assert beats[-1]["total"] == 6
        assert beats[-1]["trials_per_s"] > 0

    def test_throttle_suppresses_intermediate_updates(self):
        buf = io.StringIO()
        reporter = ProgressReporter(
            100, stream=buf, enabled=True, min_interval_s=3600.0
        )
        reporter.start()
        for _ in range(50):
            reporter.advance(1)
        # far from total and inside the throttle window: nothing yet
        assert buf.getvalue() == ""
        reporter.advance(50)  # completion always renders
        assert "100/100" in buf.getvalue()

    def test_thread_safe_counting(self):
        reporter = ProgressReporter(
            4000, stream=io.StringIO(), enabled=False, min_interval_s=0.0
        )
        reporter.start()

        def hammer():
            for _ in range(1000):
                reporter.advance(1)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reporter.done == 4000


class TestRunnerIntegration:
    def test_parallel_run_heartbeats_and_bit_identity(self, tmp_path):
        scenarios = sweep_range(Scenario.river(), [50.0, 150.0])
        campaign = TrialCampaign(trials_per_point=3, seed=13)
        with_progress, _ = run_observed_campaign(
            scenarios, campaign, label="p", workers=2,
            events_path=tmp_path / "p.events.jsonl", progress=False,
        )
        without, _ = run_observed_campaign(
            scenarios, campaign, label="p", workers=1,
        )
        assert [p.ber for p in with_progress.points] == [
            p.ber for p in without.points
        ]
        beats = [
            e
            for e in read_events(tmp_path / "p.events.jsonl")
            if e["event"] == "heartbeat"
        ]
        assert beats
        assert beats[-1]["done"] == 6
