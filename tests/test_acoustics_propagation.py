"""Tests for image-method multipath tracing."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.acoustics.constants import WaterProperties
from repro.acoustics.propagation import (
    bottom_reflection_coefficient,
    trace_paths,
)
from repro.acoustics.surface import SeaSurface
from repro.geometry.vec3 import Vec3

F = 18_500.0


def river():
    return WaterProperties.river(depth_m=4.0)


class TestTracePaths:
    def test_direct_path_first_and_bounce_free(self):
        paths = trace_paths(Vec3(0, 0, 2), Vec3(100, 0, 2), F, river())
        assert paths[0].is_direct
        assert paths[0].surface_bounces == 0
        assert paths[0].bottom_bounces == 0

    def test_direct_path_length(self):
        paths = trace_paths(Vec3(0, 0, 2), Vec3(30, 0, 2), F, river())
        assert paths[0].length_m == pytest.approx(30.0)

    def test_delays_sorted(self):
        paths = trace_paths(Vec3(0, 0, 1), Vec3(50, 0, 3), F, river())
        delays = [p.delay_s for p in paths]
        assert delays == sorted(delays)

    def test_bounce_budget_respected(self):
        paths = trace_paths(
            Vec3(0, 0, 2), Vec3(50, 0, 2), F, river(), max_bounces=2
        )
        assert all(p.surface_bounces + p.bottom_bounces <= 2 for p in paths)

    def test_zero_bounces_gives_single_path(self):
        paths = trace_paths(
            Vec3(0, 0, 2), Vec3(50, 0, 2), F, river(), max_bounces=0
        )
        assert len(paths) == 1
        assert paths[0].is_direct

    def test_more_bounces_give_more_paths(self):
        a, b = Vec3(0, 0, 2), Vec3(50, 0, 2)
        n0 = len(trace_paths(a, b, F, river(), max_bounces=0))
        n1 = len(trace_paths(a, b, F, river(), max_bounces=1))
        n2 = len(trace_paths(a, b, F, river(), max_bounces=2))
        assert n0 < n1 <= n2

    def test_single_surface_bounce_geometry(self):
        # Surface bounce length equals distance to the mirrored receiver.
        src, rx = Vec3(0, 0, 2), Vec3(40, 0, 3)
        paths = trace_paths(src, rx, F, river(), max_bounces=1)
        surf = [p for p in paths if p.surface_bounces == 1 and p.bottom_bounces == 0]
        assert len(surf) == 1
        expected = src.distance_to(rx.mirrored_surface())
        assert surf[0].length_m == pytest.approx(expected)

    def test_bounced_paths_longer_than_direct(self):
        paths = trace_paths(Vec3(0, 0, 2), Vec3(50, 0, 2), F, river())
        direct = paths[0].length_m
        assert all(p.length_m >= direct for p in paths)

    def test_bounced_paths_weaker_than_direct(self):
        paths = trace_paths(Vec3(0, 0, 2), Vec3(50, 0, 2), F, river())
        direct_gain = abs(paths[0].gain)
        assert all(abs(p.gain) <= direct_gain * 1.001 for p in paths)

    def test_out_of_column_rejected(self):
        with pytest.raises(ValueError):
            trace_paths(Vec3(0, 0, -1), Vec3(50, 0, 2), F, river())
        with pytest.raises(ValueError):
            trace_paths(Vec3(0, 0, 2), Vec3(50, 0, 10), F, river())

    def test_delay_consistent_with_sound_speed(self):
        w = river()
        paths = trace_paths(Vec3(0, 0, 2), Vec3(75, 0, 2), F, w)
        for p in paths:
            assert p.delay_s == pytest.approx(p.length_m / w.sound_speed)

    @given(
        st.floats(min_value=5.0, max_value=400.0),
        st.floats(min_value=0.5, max_value=3.5),
        st.floats(min_value=0.5, max_value=3.5),
    )
    @settings(max_examples=25, deadline=None)
    def test_reciprocity(self, x, z1, z2):
        """Swapping source and receiver preserves path gains (reciprocity)."""
        w = river()
        fwd = trace_paths(Vec3(0, 0, z1), Vec3(x, 0, z2), F, w)
        rev = trace_paths(Vec3(x, 0, z2), Vec3(0, 0, z1), F, w)
        assert len(fwd) == len(rev)
        for pf, pr in zip(fwd, rev):
            assert abs(pf.gain) == pytest.approx(abs(pr.gain), rel=1e-9)
            assert pf.length_m == pytest.approx(pr.length_m, rel=1e-9)


class TestBottomReflection:
    def test_magnitude_bounded(self):
        w = WaterProperties.ocean()
        for grazing_deg in (1, 5, 15, 30, 60, 89):
            r = bottom_reflection_coefficient(math.radians(grazing_deg), w)
            assert abs(r) <= 1.0

    def test_total_internal_reflection_at_low_grazing(self):
        # Sand (c2 > c1): below the critical angle |R| is near the
        # per-bounce loss limit.
        w = WaterProperties.ocean()
        r = bottom_reflection_coefficient(
            math.radians(2.0), w, bottom_loss_db_per_bounce=0.0
        )
        assert abs(r) == pytest.approx(1.0, abs=0.01)

    def test_mud_reflects_weakly(self):
        w = WaterProperties.river()
        sand = bottom_reflection_coefficient(
            math.radians(30.0), w, 1800.0, 1700.0, 0.0
        )
        mud = bottom_reflection_coefficient(
            math.radians(30.0), w, 1400.0, 1480.0, 0.0
        )
        assert abs(mud) < abs(sand)

    def test_extra_loss_applied(self):
        w = WaterProperties.ocean()
        lossless = bottom_reflection_coefficient(
            math.radians(10.0), w, bottom_loss_db_per_bounce=0.0
        )
        lossy = bottom_reflection_coefficient(
            math.radians(10.0), w, bottom_loss_db_per_bounce=6.0
        )
        assert abs(lossy) == pytest.approx(abs(lossless) * 10 ** (-6 / 20), rel=1e-9)
