"""Tier-1 tests for the shape/dtype dataflow engine (VAB011..VAB016).

Fixture pairs with pinned line numbers lock each rule; the vocabulary
tests lock the dimension/dtype algebra the rules rest on; the cache
tests lock the incremental contract (edit one file -> only it and its
call-graph dependents re-analyze); the chain test locks interprocedural
inference through the ``vanatta.fastfield`` kernel delegation.
"""

import json
from pathlib import Path

import pytest

import repro
from repro.analysis import discover_files, lint_paths, render_catalogue, render_json
from repro.analysis.shapes import (
    SHAPE_RULE_IDS,
    SHAPE_RULES,
    ShapeVal,
    analyze_shapes,
    run_shape_fixed_point,
    seed_shape_summaries,
    shapes_cache_path,
)
from repro.analysis.shapes.vocab import (
    COMPLEX,
    FLOAT,
    INT,
    ComplexShaped,
    ShapeTag,
    broadcast_dims,
    contract_conflict,
    dims_conflict,
    promote_dtype,
)
from repro.analysis.units.symbols import extract_module

FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"

# rule id -> (bad fixture, expected finding lines in order)
EXPECTED_SHAPES_BAD = {
    "VAB011": ("vab011_bad.py", [13, 20]),
    "VAB012": ("vab012_bad.py", [8, 15]),
    "VAB013": ("vab013_bad.py", [10, 16, 22, 27]),
    "VAB014": ("vab014_bad.py", [9, 16]),
    "VAB015": ("vab015_bad.py", [12, 21]),
    "VAB016": ("vab016_bad.py", [10, 15]),
}


# ---------------------------------------------------------------------------
# the rules, one by one
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("rule_id", sorted(EXPECTED_SHAPES_BAD))
def test_bad_fixture_trips_exactly_the_expected_lines(rule_id):
    name, lines = EXPECTED_SHAPES_BAD[rule_id]
    report = lint_paths([FIXTURES / name], select=[rule_id], units=True)
    assert [f.rule_id for f in report.findings] == [rule_id] * len(lines)
    assert [f.line for f in report.findings] == lines


@pytest.mark.parametrize("rule_id", sorted(EXPECTED_SHAPES_BAD))
def test_clean_twin_is_clean_under_every_rule(rule_id):
    name = EXPECTED_SHAPES_BAD[rule_id][0].replace("_bad", "_clean")
    report = lint_paths([FIXTURES / name], units=True)
    assert report.clean, [f.render() for f in report.findings]


def test_shape_rule_ids_and_catalogue_agree():
    assert SHAPE_RULE_IDS == tuple(sorted(EXPECTED_SHAPES_BAD))
    for rule_id, (name, summary) in SHAPE_RULES.items():
        assert name and summary, rule_id
        assert f"{rule_id} {name}" in render_catalogue()


def test_src_repro_is_shape_clean():
    """The acceptance gate: the shipped kernels carry no shape bugs."""
    package_root = Path(repro.__file__).resolve().parent
    report = analyze_shapes(discover_files([package_root]))
    assert report.clean, "\n".join(f.render() for f in report.findings)
    assert report.files > 50
    assert report.passes >= 1


def test_shapes_findings_respect_suppressions(tmp_path):
    src = (
        "from repro.analysis.shapes.vocab import ComplexShaped\n"
        "\n"
        "def peak(field: ComplexShaped['angles']) -> float:\n"
        "    return float(field[0])  # vablint: disable=VAB013\n"
    )
    path = tmp_path / "suppressed.py"
    path.write_text(src)
    assert analyze_shapes([path]).clean


def test_suppression_on_continuation_line_covers_the_statement(tmp_path):
    """Regression: a directive on a paren/backslash continuation line
    must silence findings anchored on the statement's first line."""
    src = (
        "from repro.analysis.shapes.vocab import ComplexShaped\n"
        "\n"
        "def peak(field: ComplexShaped['angles']) -> float:\n"
        "    return float(\n"
        "        field[0]  # vablint: disable=VAB013\n"
        "    )\n"
    )
    path = tmp_path / "paren.py"
    path.write_text(src)
    assert analyze_shapes([path]).clean

    src_bs = (
        "from repro.analysis.shapes.vocab import ComplexShaped\n"
        "\n"
        "def peak(field: ComplexShaped['angles']) -> float:\n"
        "    value = 0.0 + \\\n"
        "        float(field[0])  # vablint: disable=VAB013\n"
        "    return value\n"
    )
    path_bs = tmp_path / "backslash.py"
    path_bs.write_text(src_bs)
    assert analyze_shapes([path_bs]).clean


def test_suppression_on_own_line_does_not_leak_to_next_statement(tmp_path):
    src = (
        "from repro.analysis.shapes.vocab import ComplexShaped\n"
        "\n"
        "def peak(field: ComplexShaped['angles']) -> float:\n"
        "    # vablint: disable=VAB013\n"
        "    return float(field[0])\n"
    )
    path = tmp_path / "leak.py"
    path.write_text(src)
    report = analyze_shapes([path])
    assert [f.rule_id for f in report.findings] == ["VAB013"]


# ---------------------------------------------------------------------------
# interprocedural inference through the fastfield kernel delegation
# ---------------------------------------------------------------------------


def test_fastfield_chain_infers_through_the_kernel():
    """kernel contract -> delegating sweep -> dB wrapper, no annotations
    on the last two: the fixed point must carry complex through the
    batch API and float through the magnitude wrapper."""
    path = (
        Path(repro.__file__).resolve().parent / "vanatta" / "fastfield.py"
    )
    info = extract_module(path, path.read_text(encoding="utf-8"))
    summaries = seed_shape_summaries([info])
    _, summaries, passes = run_shape_fixed_point([info], summaries)
    prefix = "repro.vanatta.fastfield.ArrayFactorEngine."

    kernel = summaries[prefix + "monostatic_field_sum"]
    assert kernel.return_source == "contract"
    assert kernel.returns.dims == ("...",)
    assert kernel.returns.dtype == COMPLEX

    batch = summaries[prefix + "monostatic_batch"]
    assert batch.return_source == "inferred"
    assert batch.returns.dtype == COMPLEX

    pattern = summaries[prefix + "monostatic_pattern_db"]
    assert pattern.return_source == "inferred"
    assert pattern.returns.dtype == FLOAT

    assert passes >= 2  # the chain needs propagation, not one sweep


# ---------------------------------------------------------------------------
# the contract vocabulary
# ---------------------------------------------------------------------------


def test_shaped_factory_builds_annotated_tags():
    tag = ComplexShaped["trials", "samples"].__metadata__[0]
    assert tag == ShapeTag(("trials", "samples"), COMPLEX)
    variadic = ComplexShaped[..., "D"].__metadata__[0]
    assert variadic.dims == ("...", "D")
    with pytest.raises(TypeError):
        ComplexShaped[object()]


def test_promote_dtype_lattice():
    assert promote_dtype(COMPLEX, None) == COMPLEX
    assert promote_dtype(None, FLOAT) is None
    assert promote_dtype(INT, FLOAT) == FLOAT
    assert promote_dtype(INT, INT) == INT


def test_dims_conflict_only_on_same_kind_tokens():
    assert dims_conflict("trials", "samples")
    assert dims_conflict(3, 4)
    assert not dims_conflict("trials", 3)
    assert not dims_conflict("trials", "?")
    assert not dims_conflict("trials", "trials")


def test_broadcast_dims_alignment():
    dims, conflict = broadcast_dims(("trials", "samples"), ("trials", 1))
    assert dims == ("trials", "samples") and conflict is None
    dims, conflict = broadcast_dims(("trials",), ("samples",))
    assert dims is None and conflict == ("trials", "samples")
    dims, conflict = broadcast_dims(("trials", "samples"), ("trials",))
    assert dims is None and conflict == ("samples", "trials")
    dims, conflict = broadcast_dims(("...", "D"), ("trials",))
    assert dims is None and conflict is None


def test_contract_conflict_messages():
    assert contract_conflict(("angles",), ("angles",)) is None
    assert contract_conflict(("angles",), ("?",)) is None
    assert "rank 1" in contract_conflict(("angles", "elements"), ("elements",))
    assert "contract requires" in contract_conflict(("angles",), ("elements",))
    assert contract_conflict(("...", "D"), ("a", "b", "D")) is None
    assert contract_conflict(None, ("a",)) is None


def test_shape_val_round_trips_through_json():
    val = ShapeVal(("trials", 3, "?"), COMPLEX, shared=True)
    assert ShapeVal.from_dict(json.loads(json.dumps(val.to_dict()))) == val


# ---------------------------------------------------------------------------
# incremental cache
# ---------------------------------------------------------------------------


def _write_kernel_pair(tmp_path, kernel_dtype):
    producer = tmp_path / "producer.py"
    caller = tmp_path / "caller.py"
    producer.write_text(
        "from repro.analysis.shapes.vocab import "
        "ComplexShaped, FloatShaped\n"
        "\n"
        f"def kernel(n: int) -> {kernel_dtype}['angles']:\n"
        "    raise NotImplementedError\n"
    )
    caller.write_text(
        "from producer import kernel\n"
        "\n"
        "def level(n: int) -> float:\n"
        "    return float(kernel(n)[0])\n"
    )
    return producer, caller


def test_cache_reanalyzes_dependents_of_a_contract_edit(tmp_path):
    producer, caller = _write_kernel_pair(tmp_path, "ComplexShaped")
    cache = tmp_path / "shapes_cache.json"
    files = [producer, caller]

    cold = analyze_shapes(files, cache_path=cache)
    assert [(f.rule_id, Path(f.path).name, f.line) for f in cold.findings] == [
        ("VAB013", "caller.py", 4)
    ]
    assert sorted(Path(p).name for p in cold.analyzed) == [
        "caller.py", "producer.py",
    ]

    warm = analyze_shapes(files, cache_path=cache)
    assert warm.analyzed == []
    assert sorted(Path(p).name for p in warm.reused) == [
        "caller.py", "producer.py",
    ]
    assert [f.to_dict() for f in warm.findings] == [
        f.to_dict() for f in cold.findings
    ]

    # Relax the producer's contract: only its bytes change, but the
    # caller's call-site verdict depends on it -> both re-analyze.
    _write_kernel_pair(tmp_path, "FloatShaped")
    edited = analyze_shapes(files, cache_path=cache)
    assert sorted(Path(p).name for p in edited.analyzed) == [
        "caller.py", "producer.py",
    ]
    assert edited.clean, [f.render() for f in edited.findings]


def test_cache_and_cold_reports_are_byte_identical(tmp_path):
    cache = tmp_path / "shapes_cache.json"
    fixture = FIXTURES / "vab013_bad.py"
    cold = lint_paths([fixture], units=True)
    analyze_shapes([fixture], cache_path=cache)  # prime
    warm = lint_paths([fixture], units=True)
    # Stats differ (analyzed vs reused); the findings must not.
    cold_payload = json.loads(render_json(cold))
    warm_payload = json.loads(render_json(warm))
    assert cold_payload["findings"] == warm_payload["findings"]
    assert cold_payload["counts"] == warm_payload["counts"]


def test_cache_invalidates_on_engine_version_change(tmp_path, monkeypatch):
    producer, caller = _write_kernel_pair(tmp_path, "ComplexShaped")
    cache = tmp_path / "shapes_cache.json"
    analyze_shapes([producer, caller], cache_path=cache)
    warm = analyze_shapes([producer, caller], cache_path=cache)
    assert warm.analyzed == []

    import repro.analysis.shapes.cache as shapes_cache_module

    monkeypatch.setattr(shapes_cache_module, "ENGINE_VERSION", "999.0.0")
    bumped = analyze_shapes([producer, caller], cache_path=cache)
    assert sorted(Path(p).name for p in bumped.analyzed) == [
        "caller.py", "producer.py",
    ]
    assert bumped.engine_version == "999.0.0"


def test_shapes_cache_path_derivation():
    assert shapes_cache_path(None) is None
    assert shapes_cache_path(
        Path("x/.vablint_units_cache.json")
    ) == Path("x/.vablint_shapes_cache.json")
    assert shapes_cache_path(Path("x/lint.json")) == Path("x/lint.json.shapes")


def test_lint_paths_writes_the_sibling_shapes_cache(tmp_path):
    units_cache = tmp_path / "units_cache.json"
    report = lint_paths(
        [FIXTURES / "vab016_bad.py"], units=True, units_cache=units_cache
    )
    assert report.units_stats is not None
    assert report.shapes_stats is not None
    sibling = shapes_cache_path(units_cache)
    assert units_cache.is_file() and sibling.is_file()
    payload = json.loads(sibling.read_text())
    assert payload["engine"] == report.shapes_stats["engine_version"]
