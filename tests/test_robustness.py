"""Failure injection and cross-module robustness.

The unit suites prove each block right; this suite attacks the system the
way deployments do — saturated front ends, truncated records, hostile
payloads, absurd geometries — and checks it degrades *cleanly*: no
exceptions, no false CRC passes, no silent nonsense.
"""

import dataclasses
import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Scenario, default_vab_budget, simulate_link
from repro.phy.frame import FrameConfig, build_frame, parse_frame
from repro.phy.receiver import ReaderReceiver
from repro.sim.engine import simulate_trial
from repro.vanatta.node import VanAttaNode

from tests.test_phy_receiver import CHIP_RATE, FS, loopback_record


class TestReceiverHostileInputs:
    def receiver(self):
        return ReaderReceiver(fs=FS, chip_rate=CHIP_RATE)

    def test_empty_record(self):
        result = self.receiver().demodulate(np.zeros(0, complex))
        assert not result.success

    def test_all_zero_record(self):
        result = self.receiver().demodulate(np.zeros(5000, complex))
        assert not result.success

    def test_constant_record(self):
        result = self.receiver().demodulate(np.full(5000, 7.0 + 3.0j))
        assert not result.success

    def test_nan_free_output_on_impulse(self):
        record = np.zeros(5000, complex)
        record[1234] = 1e9
        result = self.receiver().demodulate(record)
        assert not result.success
        assert np.all(np.isfinite(result.chip_soft)) or len(result.chip_soft) == 0

    def test_truncated_mid_frame(self):
        record = loopback_record(payload=b"truncate me please")
        cut = self.receiver().demodulate(record[: len(record) // 2])
        # Either no detection, or a detected-but-failed frame; never a
        # false CRC pass with the wrong payload.
        if cut.success:
            assert cut.frame.payload == b"truncate me please"[: len(cut.frame.payload)]

    def test_record_of_pure_sinusoid(self):
        n = np.arange(8000)
        record = np.exp(2j * np.pi * 437.0 * n / FS)
        result = self.receiver().demodulate(record)
        assert not result.success

    def test_extreme_amplitudes(self):
        for scale in (1e-12, 1e12):
            record = loopback_record(payload=b"scaled") * scale
            result = self.receiver().demodulate(record)
            assert result.success, f"failed at scale {scale}"

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_random_noise_never_crashes_or_false_passes(self, seed):
        rng = np.random.default_rng(seed)
        record = rng.standard_normal(6000) + 1j * rng.standard_normal(6000)
        result = self.receiver().demodulate(record)
        # False CRC passes on pure noise should be ~2^-16 per record and
        # are effectively impossible over 10 examples.
        assert not result.success


class TestFrameParserHostileInputs:
    def test_random_chips_never_crash(self):
        rng = np.random.default_rng(3)
        cfg = FrameConfig()
        for _ in range(50):
            chips = rng.integers(0, 2, size=rng.integers(1, 600))
            frame = parse_frame(chips.astype(np.int64), cfg)
            if frame is not None and frame.crc_ok:
                pytest.fail("random chips passed CRC (probability ~2^-16 x 50)")

    def test_length_field_lies_large(self):
        cfg = FrameConfig()
        chips = build_frame(1, b"ab", cfg)
        body = chips[len(cfg.preamble):].copy()
        # Claiming a huge payload makes the stream too short -> None.
        huge = build_frame(1, bytes(200), cfg)
        short = huge[len(cfg.preamble):][: len(body)]
        assert parse_frame(short, cfg) is None


class TestEngineExtremes:
    def test_point_blank_range(self):
        result = simulate_trial(
            Scenario.river(range_m=2.0), rng=np.random.default_rng(0)
        )
        assert result.success  # saturation-free: amplitudes are linear

    def test_deep_node_shallow_reader(self):
        base = Scenario.ocean(range_m=60.0)
        from repro.geometry.placement import Pose
        from repro.geometry.vec3 import Vec3

        sc = dataclasses.replace(
            base,
            reader=Pose(Vec3(0.0, 0.0, 1.0)),
            node=Pose(Vec3(60.0, 0.0, 14.0), 180.0),
        )
        result = simulate_trial(sc, rng=np.random.default_rng(1))
        assert result.detected

    def test_tiny_payload(self):
        result = simulate_trial(
            Scenario.river(range_m=50.0), payload=b"",
            rng=np.random.default_rng(2),
        )
        assert result.frame_ok
        assert result.payload_bits == 0

    def test_max_payload(self):
        result = simulate_trial(
            Scenario.river(range_m=40.0), payload=bytes(255),
            rng=np.random.default_rng(3),
        )
        assert result.frame_ok

    def test_node_rotated_backwards(self):
        # Node facing away: element pattern nulls the link.
        sc = Scenario.river(range_m=100.0).with_node_rotation(90.0)
        result = simulate_trial(sc, rng=np.random.default_rng(4))
        assert not result.frame_ok

    def test_one_element_array(self):
        from repro.vanatta.array import VanAttaArray

        node = VanAttaNode(array=VanAttaArray.uniform(1))
        result = simulate_trial(
            Scenario.river(range_m=60.0), node=node,
            rng=np.random.default_rng(5),
        )
        assert result.success


class TestBudgetExtremes:
    def test_budget_sane_at_extremes(self):
        b = default_vab_budget(Scenario.river())
        assert math.isfinite(b.snr_db(1.5))
        assert math.isfinite(b.snr_db(50_000.0))
        assert b.ber(50_000.0) == pytest.approx(0.5, abs=0.01)

    def test_max_range_bracket_clamps(self):
        b = default_vab_budget(Scenario.river())
        # Impossible target within bracket floor.
        hopeless = b.with_(system_loss_db=200.0)
        assert hopeless.max_range_m(1e-3) == pytest.approx(1.5)
        # Trivial target saturates at the bracket ceiling.
        heroic = b.with_(system_loss_db=-100.0)
        assert heroic.max_range_m(1e-3) == pytest.approx(20_000.0)

    def test_simulate_link_zero_trials_never_raises(self):
        for r in (5.0, 500.0, 5_000.0):
            report = simulate_link(Scenario.river(range_m=r), trials=0)
            assert 0.0 <= report.predicted_ber <= 0.5 + 1e-9
