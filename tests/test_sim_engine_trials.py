"""Integration tests: the end-to-end waveform simulator and campaigns."""

import math

import numpy as np
import pytest

from repro.baselines.conventional_array import ConventionalNode
from repro.baselines.pab import pab_node
from repro.core import Scenario
from repro.sim.engine import TrialResult, simulate_trial
from repro.sim.results import BERPoint, CampaignResult
from repro.sim.sweep import sweep_range
from repro.sim.trials import TrialCampaign, run_campaign
from repro.vanatta.array import VanAttaArray
from repro.vanatta.node import VanAttaNode


class TestSimulateTrial:
    def test_noise_free_trial_is_perfect(self):
        result = simulate_trial(
            Scenario.river(range_m=100.0),
            rng=np.random.default_rng(0),
            include_noise=False,
        )
        assert result.detected
        assert result.frame_ok
        assert result.ber == 0.0

    def test_short_range_noisy_trial_succeeds(self):
        result = simulate_trial(
            Scenario.river(range_m=30.0), rng=np.random.default_rng(1)
        )
        assert result.success
        assert result.snr_db > 10.0

    def test_extreme_range_fails(self):
        result = simulate_trial(
            Scenario.river(range_m=2_000.0), rng=np.random.default_rng(2)
        )
        assert not result.frame_ok
        assert result.ber >= 0.4

    def test_deterministic_given_rng(self):
        a = simulate_trial(Scenario.river(range_m=350.0), rng=np.random.default_rng(7),
                           payload=b"abcdefgh")
        b = simulate_trial(Scenario.river(range_m=350.0), rng=np.random.default_rng(7),
                           payload=b"abcdefgh")
        assert a == b

    def test_result_records_geometry(self):
        sc = Scenario.river(range_m=80.0, node_heading_offset_deg=25.0)
        result = simulate_trial(sc, rng=np.random.default_rng(3), include_noise=False)
        assert result.range_m == pytest.approx(80.0)
        assert result.incidence_deg == pytest.approx(25.0, abs=1e-6)

    def test_orientation_robustness(self):
        """Frames decode across node orientations (the Van Atta claim)."""
        for offset in (-45.0, -20.0, 0.0, 20.0, 45.0):
            sc = Scenario.river(range_m=100.0, node_heading_offset_deg=offset)
            result = simulate_trial(sc, rng=np.random.default_rng(4))
            assert result.success, f"failed at offset {offset}"

    def test_pab_node_dies_where_vab_lives(self):
        sc = Scenario.river(range_m=60.0)
        vab = simulate_trial(sc, rng=np.random.default_rng(5),
                             si_suppression_db=130.0)
        pab = simulate_trial(sc, node=pab_node(), rng=np.random.default_rng(5),
                             si_suppression_db=95.0)
        assert vab.success
        assert not pab.success

    def test_pab_node_works_close(self):
        sc = Scenario.river(range_m=10.0)
        pab = simulate_trial(sc, node=pab_node(), rng=np.random.default_rng(6),
                             si_suppression_db=95.0)
        assert pab.success

    def test_conventional_node_loses_off_axis(self):
        base = VanAttaArray.uniform(4)
        # 15 degrees off-broadside: the self-reflecting array decoheres
        # (~-13 dB) while the Van Atta barely notices; at 200 m the
        # difference decides the link.
        sc = Scenario.river(range_m=200.0, node_heading_offset_deg=15.0)
        va = simulate_trial(sc, rng=np.random.default_rng(8))
        conv = simulate_trial(
            sc,
            node=ConventionalNode(array=base),
            rng=np.random.default_rng(8),
        )
        assert va.success
        assert not conv.success

    def test_ocean_surface_animation_runs(self):
        sc = Scenario.ocean(range_m=60.0, sea_state=4)
        result = simulate_trial(sc, rng=np.random.default_rng(9))
        assert result.detected

    def test_multipath_channel_still_decodes_short_range(self):
        # Full image-method channel (default Scenario, not the preset).
        sc = Scenario(name="multipath-check")
        result = simulate_trial(sc, rng=np.random.default_rng(10))
        assert result.detected


class TestCampaigns:
    def test_run_point_aggregates(self):
        campaign = TrialCampaign(trials_per_point=5, seed=1)
        point = campaign.run_point(Scenario.river(range_m=50.0))
        assert point.trials == 5
        assert point.frame_success_rate == 1.0
        assert point.ber == 0.0

    def test_campaign_reproducible(self):
        campaign = TrialCampaign(trials_per_point=4, seed=42)
        p1 = campaign.run_point(Scenario.river(range_m=380.0))
        p2 = campaign.run_point(Scenario.river(range_m=380.0))
        assert p1 == p2

    def test_different_seeds_differ_near_threshold(self):
        sc = Scenario.river(range_m=400.0)
        p1 = TrialCampaign(trials_per_point=6, seed=1).run_point(sc)
        p2 = TrialCampaign(trials_per_point=6, seed=2).run_point(sc)
        # Not a strict requirement at every range, but near threshold the
        # two seeds should not produce bit-identical mean SNR.
        assert p1.mean_snr_db != p2.mean_snr_db

    def test_run_campaign_over_sweep(self):
        scenarios = sweep_range(Scenario.river(), [30.0, 60.0])
        result = run_campaign(scenarios, TrialCampaign(trials_per_point=3, seed=5),
                              label="smoke")
        assert result.label == "smoke"
        assert len(result.points) == 2
        assert result.total_trials == 6

    def test_ber_degrades_with_range(self):
        scenarios = sweep_range(Scenario.river(), [50.0, 600.0])
        result = run_campaign(scenarios, TrialCampaign(trials_per_point=5, seed=6))
        assert result.points[0].ber < result.points[1].ber

    def test_max_range_at_ber(self):
        result = CampaignResult(label="x")
        result.add(BERPoint(50.0, 0.0, 10, 0.0, 1.0, 1.0, 30.0))
        result.add(BERPoint(150.0, 0.0, 10, 5e-4, 1.0, 1.0, 15.0))
        result.add(BERPoint(400.0, 0.0, 10, 0.2, 0.1, 0.5, 3.0))
        assert result.max_range_at_ber(1e-3) == 150.0

    def test_as_rows(self):
        result = CampaignResult(label="x")
        result.add(BERPoint(50.0, 0.0, 2, 0.0, 1.0, 1.0, 30.0))
        rows = result.as_rows()
        assert rows[0]["range_m"] == 50.0
        assert rows[0]["trials"] == 2

    def test_point_from_trials_requires_data(self):
        with pytest.raises(ValueError):
            BERPoint.from_trials([])

    def test_point_from_trials_undetected(self):
        t = TrialResult(False, False, 0.5, -math.inf, 10.0, 0.0, 64)
        point = BERPoint.from_trials([t, t])
        assert point.detection_rate == 0.0
        assert point.mean_snr_db == -math.inf
        assert point.ber == 0.5
