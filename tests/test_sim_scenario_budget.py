"""Tests for scenarios and the analytic link budget."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.pab import pab_link_budget
from repro.core import Scenario, default_vab_budget
from repro.phy.ber import required_snr_db
from repro.sim.linkbudget import LinkBudget
from repro.sim.sweep import linear_angles, log_ranges, sweep_angles, sweep_range
from repro.vanatta.array import VanAttaArray


class TestScenario:
    def test_river_preset_fresh_and_calm(self):
        sc = Scenario.river()
        assert sc.water.salinity_ppt < 1.0
        assert sc.surface.rms_height_m == 0.0
        assert sc.name == "river"

    def test_ocean_preset_salty_and_wavy(self):
        sc = Scenario.ocean(sea_state=4)
        assert sc.water.salinity_ppt > 30.0
        assert sc.surface.rms_height_m > 0.1
        assert "ss4" in sc.name

    def test_range_property(self):
        assert Scenario.river(range_m=123.0).range_m == pytest.approx(123.0)

    def test_at_range_moves_node(self):
        sc = Scenario.river(range_m=50.0).at_range(200.0)
        assert sc.range_m == pytest.approx(200.0)
        with pytest.raises(ValueError):
            sc.at_range(0.0)

    def test_incidence_default_zero(self):
        assert Scenario.river().incidence_deg == pytest.approx(0.0, abs=1e-9)

    def test_with_node_rotation(self):
        sc = Scenario.river().with_node_rotation(30.0)
        assert sc.incidence_deg == pytest.approx(30.0, abs=1e-9)

    def test_fs_is_chip_rate_times_sps(self):
        sc = Scenario.river()
        assert sc.fs == sc.chip_rate * sc.samples_per_chip

    def test_channel_factory_uses_environment(self):
        sc = Scenario.ocean(sea_state=3)
        ch = sc.channel()
        assert ch.water is sc.water
        assert ch.surface is sc.surface

    def test_wavelength(self):
        sc = Scenario.river()
        assert sc.carrier_wavelength() == pytest.approx(
            sc.water.sound_speed / sc.carrier_hz
        )


class TestSweeps:
    def test_sweep_range(self):
        scenarios = sweep_range(Scenario.river(), [10, 50, 100])
        assert [s.range_m for s in scenarios] == [10, 50, 100]

    def test_sweep_angles(self):
        scenarios = sweep_angles(Scenario.river(), [-30, 0, 30])
        angles = [s.incidence_deg for s in scenarios]
        assert angles == pytest.approx([30, 0, 30], abs=1e-9)

    def test_log_ranges(self):
        r = log_ranges(10.0, 1000.0, 3)
        assert r[0] == pytest.approx(10.0)
        assert r[1] == pytest.approx(100.0)
        assert r[2] == pytest.approx(1000.0)
        with pytest.raises(ValueError):
            log_ranges(10.0, 5.0, 3)

    def test_linear_angles_symmetric(self):
        a = linear_angles(60.0, 15.0)
        assert list(a) == [-60, -45, -30, -15, 0, 15, 30, 45, 60]


class TestLinkBudget:
    def test_snr_decreases_with_range(self):
        b = default_vab_budget(Scenario.river())
        assert b.snr_db(50.0) > b.snr_db(100.0) > b.snr_db(300.0)

    def test_ber_increases_with_range(self):
        b = default_vab_budget(Scenario.river())
        assert b.ber(100.0) < b.ber(400.0) <= 0.5 + 1e-9

    def test_max_range_consistent_with_snr(self):
        b = default_vab_budget(Scenario.river())
        r = b.max_range_m(1e-3)
        need = required_snr_db(1e-3, coherent=True)
        assert b.snr_db(r) == pytest.approx(need, abs=0.1)

    def test_headline_river_range(self):
        """The paper's headline: >300 m at BER 1e-3 in the river."""
        b = default_vab_budget(Scenario.river())
        assert b.max_range_m(1e-3) > 300.0

    def test_headline_15x_over_pab(self):
        """The paper's head-to-head: ~15x range over the prior SOTA."""
        sc = Scenario.river()
        vab = default_vab_budget(sc).max_range_m(1e-3)
        pab = pab_link_budget(sc).max_range_m(1e-3)
        assert 10.0 < vab / pab < 22.0

    def test_ocean_range_shorter_but_usable(self):
        river = default_vab_budget(Scenario.river()).max_range_m(1e-3)
        ocean = default_vab_budget(Scenario.ocean(sea_state=3)).max_range_m(1e-3)
        assert 100.0 < ocean < river

    def test_array_gain_drives_range(self):
        sc = Scenario.river()
        small = default_vab_budget(sc, num_elements=2).max_range_m(1e-3)
        large = default_vab_budget(sc, num_elements=8).max_range_m(1e-3)
        assert large > small

    def test_orientation_reduces_range_mildly(self):
        sc = Scenario.river()
        head_on = default_vab_budget(sc, theta_deg=0.0).max_range_m(1e-3)
        oblique = default_vab_budget(sc, theta_deg=45.0).max_range_m(1e-3)
        assert head_on * 0.5 < oblique < head_on

    def test_si_floor_caps_pab(self):
        sc = Scenario.river()
        pab = pab_link_budget(sc)
        assert pab.noise_level_in_band_db() > pab.ambient_noise_db() + 10.0

    def test_no_si_means_ambient_limited(self):
        b = default_vab_budget(Scenario.river()).with_(si_suppression_db=None)
        assert b.noise_level_in_band_db() == pytest.approx(b.ambient_noise_db())

    def test_reflection_gain_terms(self):
        b = LinkBudget(scenario=Scenario.river(), array_gain_db=12.0,
                       modulation_depth=1.0, node_loss_db=0.0)
        # depth 1 -> 20log10(0.5) = -6.02 on top of the array gain.
        assert b.reflection_gain_db() == pytest.approx(12.0 - 6.02, abs=0.01)

    def test_processing_gain_fm0(self):
        b = default_vab_budget(Scenario.river())
        assert b.processing_gain_db() == pytest.approx(10 * math.log10(2.0))

    def test_margin_sign(self):
        b = default_vab_budget(Scenario.river())
        r = b.max_range_m(1e-3)
        assert b.margin_db(r * 0.5) > 0.0
        assert b.margin_db(r * 2.0) < 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkBudget(scenario=Scenario.river(), modulation_depth=0.0)
        with pytest.raises(ValueError):
            LinkBudget(scenario=Scenario.river(), chips_per_bit=0)

    def test_for_array_matches_default(self):
        sc = Scenario.river()
        arr = VanAttaArray.uniform(
            4, frequency_hz=sc.carrier_hz, sound_speed=sc.water.sound_speed
        )
        a = LinkBudget.for_array(sc, arr)
        b = default_vab_budget(sc, num_elements=4)
        assert a.array_gain_db == pytest.approx(b.array_gain_db, abs=1e-9)

    @given(st.floats(min_value=5.0, max_value=2000.0))
    @settings(max_examples=25)
    def test_snr_finite_everywhere(self, r):
        b = default_vab_budget(Scenario.river())
        assert math.isfinite(b.snr_db(r))
