"""Tests for energy harvesting and the node power budget."""

import math

import pytest

from repro.piezo.harvester import (
    EnergyHarvester,
    PowerBudget,
    intensity_from_spl,
)


class TestIntensity:
    def test_reference_level(self):
        # 0 dB re 1 uPa is the reference intensity by construction.
        assert intensity_from_spl(0.0) == pytest.approx(6.7e-19, rel=0.01)

    def test_ten_db_is_factor_ten(self):
        assert intensity_from_spl(10.0) / intensity_from_spl(0.0) == pytest.approx(
            10.0
        )


class TestHarvester:
    def test_threshold_gates_harvest(self):
        h = EnergyHarvester()
        f = 18_500.0
        # Very weak field: open-circuit voltage below rectifier threshold.
        assert h.harvested_power_w(120.0, f) == 0.0

    def test_harvest_positive_above_threshold(self):
        h = EnergyHarvester()
        assert h.harvested_power_w(170.0, 18_500.0) > 0.0

    def test_harvest_scales_with_level(self):
        h = EnergyHarvester()
        f = 18_500.0
        p1 = h.harvested_power_w(170.0, f)
        p2 = h.harvested_power_w(180.0, f)
        assert p2 == pytest.approx(10.0 * p1, rel=1e-6)

    def test_more_elements_capture_more(self):
        one = EnergyHarvester(num_elements=1)
        four = EnergyHarvester(num_elements=4)
        f = 18_500.0
        assert four.captured_acoustic_power_w(160.0, f) == pytest.approx(
            4.0 * one.captured_acoustic_power_w(160.0, f)
        )

    def test_efficiencies_discount(self):
        h = EnergyHarvester()
        f = 18_500.0
        acoustic = h.captured_acoustic_power_w(175.0, f)
        dc = h.harvested_power_w(175.0, f)
        assert dc < acoustic
        assert dc == pytest.approx(
            acoustic * h.electroacoustic_efficiency * h.rectifier_efficiency
        )

    def test_charge_time_finite_when_net_positive(self):
        h = EnergyHarvester()
        t = h.charge_time_s(175.0, 18_500.0, target_voltage=2.2)
        assert 0.0 < t < math.inf

    def test_charge_time_infinite_when_load_exceeds(self):
        h = EnergyHarvester()
        harvested = h.harvested_power_w(170.0, 18_500.0)
        t = h.charge_time_s(170.0, 18_500.0, load_power_w=harvested * 2.0)
        assert t == math.inf

    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyHarvester(num_elements=0)
        with pytest.raises(ValueError):
            EnergyHarvester(rectifier_efficiency=1.5)


class TestPowerBudget:
    def test_micro_watt_scale(self):
        # The node must be ultra-low power: single-digit microwatts.
        avg = PowerBudget().average_power_w(bitrate_bps=1000.0)
        assert avg < 10e-6

    def test_higher_bitrate_costs_more(self):
        b = PowerBudget()
        assert b.average_power_w(2000.0) > b.average_power_w(100.0)

    def test_duty_cycle_scales_active_power(self):
        lazy = PowerBudget(duty_cycle=0.01)
        busy = PowerBudget(duty_cycle=0.5)
        assert busy.average_power_w(1000.0) > lazy.average_power_w(1000.0)

    def test_breakdown_sums_to_average(self):
        b = PowerBudget()
        parts = b.breakdown(bitrate_bps=1000.0)
        assert sum(parts.values()) == pytest.approx(b.average_power_w(1000.0))

    def test_sustainability(self):
        b = PowerBudget()
        need = b.average_power_w(1000.0)
        assert b.is_sustainable(need * 1.1, 1000.0)
        assert not b.is_sustainable(need * 0.9, 1000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerBudget(duty_cycle=1.5)
        with pytest.raises(ValueError):
            PowerBudget().average_power_w(-1.0)
