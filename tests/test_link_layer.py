"""Tests for session timing, goodput, and slotted-ALOHA inventory."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.link.mac import (
    InventoryResult,
    SlottedAlohaInventory,
    throughput_efficiency,
    _adapt_window,
)
from repro.link.session import FrameTiming, QuerySession
from repro.phy.downlink import PIEConfig
from repro.phy.frame import FrameConfig


class TestFrameTiming:
    def test_response_duration(self):
        t = FrameTiming(chip_rate=2_000.0)
        chips = FrameConfig().frame_chips(8)
        assert t.response_duration_s(8) == pytest.approx(chips / 2_000.0)

    def test_turnaround_round_trip(self):
        t = FrameTiming()
        assert t.turnaround_s(300.0, 1500.0) == pytest.approx(0.4)

    def test_turnaround_rejects_negative(self):
        with pytest.raises(ValueError):
            FrameTiming().turnaround_s(-1.0)

    def test_round_duration_sums(self):
        t = FrameTiming()
        total = t.round_duration_s(8, 100.0)
        assert total == pytest.approx(
            t.query_duration_s()
            + t.turnaround_s(100.0)
            + t.response_duration_s(8)
            + t.guard_s
        )

    def test_turnaround_dominates_at_long_range(self):
        t = FrameTiming()
        assert t.turnaround_s(300.0) > t.response_duration_s(8)


class TestQuerySession:
    def test_perfect_link_attempts(self):
        s = QuerySession(frame_success_probability=1.0)
        assert s.expected_attempts() == pytest.approx(1.0)
        assert s.delivery_probability() == 1.0

    def test_half_link(self):
        s = QuerySession(frame_success_probability=0.5, max_retries=3)
        assert s.expected_attempts() == pytest.approx((1 - 0.5**4) / 0.5)
        assert s.delivery_probability() == pytest.approx(1 - 0.5**4)

    def test_dead_link(self):
        s = QuerySession(frame_success_probability=0.0, max_retries=2)
        assert s.expected_attempts() == 3.0
        assert s.delivery_probability() == 0.0
        assert s.goodput_bps(50.0) == 0.0

    def test_goodput_decreases_with_range(self):
        s = QuerySession(frame_success_probability=1.0)
        assert s.goodput_bps(10.0) > s.goodput_bps(300.0)

    def test_goodput_decreases_with_loss(self):
        good = QuerySession(frame_success_probability=1.0)
        bad = QuerySession(frame_success_probability=0.3)
        assert good.goodput_bps(100.0) > bad.goodput_bps(100.0)

    def test_uplink_bitrate(self):
        s = QuerySession()
        # FM0: 2 chips/bit at 2 kchip/s -> 1 kbps.
        assert s.uplink_bitrate_bps() == pytest.approx(1_000.0)

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            QuerySession(frame_success_probability=1.5)

    @given(st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=25)
    def test_goodput_positive_for_live_links(self, p):
        s = QuerySession(frame_success_probability=p)
        assert s.goodput_bps(100.0) > 0.0


class TestInventory:
    def test_single_node_reads_fast(self):
        inv = SlottedAlohaInventory()
        result = inv.run({1: 50.0})
        assert result.inventoried == [1]
        assert result.rounds <= 2

    def test_all_nodes_eventually_read(self):
        inv = SlottedAlohaInventory(seed=3)
        nodes = {i: 50.0 + 10 * i for i in range(1, 9)}
        result = inv.run(nodes)
        assert sorted(result.inventoried) == sorted(nodes)

    def test_deterministic_for_seed(self):
        nodes = {i: 40.0 for i in range(1, 6)}
        r1 = SlottedAlohaInventory(seed=9).run(nodes)
        r2 = SlottedAlohaInventory(seed=9).run(nodes)
        assert r1.inventoried == r2.inventoried
        assert r1.rounds == r2.rounds

    def test_lossy_links_need_more_rounds(self):
        nodes = {i: 60.0 for i in range(1, 6)}
        clean = SlottedAlohaInventory(seed=4).run(nodes)
        lossy = SlottedAlohaInventory(seed=4).run(
            nodes, delivery_probability={i: 0.4 for i in nodes}
        )
        assert lossy.rounds >= clean.rounds
        assert lossy.elapsed_s > clean.elapsed_s

    def test_dead_nodes_not_inventoried(self):
        nodes = {1: 50.0, 2: 50.0}
        result = SlottedAlohaInventory(seed=5, max_rounds=10).run(
            nodes, delivery_probability={1: 1.0, 2: 0.0}
        )
        assert 1 in result.inventoried
        assert 2 not in result.inventoried
        assert result.rounds == 10

    def test_more_nodes_take_longer(self):
        small = SlottedAlohaInventory(seed=6).run({i: 50.0 for i in range(1, 3)})
        large = SlottedAlohaInventory(seed=6).run({i: 50.0 for i in range(1, 11)})
        assert large.elapsed_s > small.elapsed_s

    def test_stats_consistency(self):
        nodes = {i: 50.0 for i in range(1, 7)}
        result = SlottedAlohaInventory(seed=7).run(nodes)
        assert result.stats.frames_delivered == len(result.inventoried)
        assert result.stats.frames_sent >= result.stats.frames_delivered
        assert 0.0 < throughput_efficiency(result) <= 1.0

    def test_read_rate(self):
        result = SlottedAlohaInventory(seed=8).run({1: 30.0, 2: 30.0})
        assert result.node_read_rate_hz() > 0.0

    def test_requires_nodes(self):
        with pytest.raises(ValueError):
            SlottedAlohaInventory().run({})

    def test_missing_probability_rejected(self):
        with pytest.raises(ValueError):
            SlottedAlohaInventory().run({1: 10.0}, delivery_probability={2: 1.0})


class TestWindowAdaptation:
    def test_grows_toward_population(self):
        assert _adapt_window(4, 20) == 8

    def test_shrinks_when_overprovisioned(self):
        assert _adapt_window(64, 3) == 32

    def test_stable_at_match(self):
        assert _adapt_window(8, 8) == 8

    def test_capped(self):
        assert _adapt_window(256, 10_000) == 256
        assert _adapt_window(1, 1) == 1
