"""Tests for the unified telemetry layer (repro.obs) and its consumers.

Covers the span tracer (nesting, merge, no-op fast path), the metrics
registry (instruments, isolation, snapshot merging), run manifests and
event logs (round-trip through disk), the report renderer, the
bench_compare regression gate, and the LinkStats zero-denominator
contract.
"""

import importlib.util
import json
import time
from pathlib import Path

import pytest

from repro.core import Scenario
from repro.link.stats import LinkStats
from repro.obs import (
    EventLog,
    MetricsRegistry,
    RunManifest,
    SpanTracer,
    active_tracer,
    collect_spans,
    counter,
    gauge,
    histogram,
    instruments,
    metrics_snapshot,
    read_events,
    render_report,
    scenario_snapshot,
    span,
    use_registry,
)
from repro.obs.metrics import HistogramData
from repro.sim.export import (
    MANIFEST_SCHEMA_VERSION,
    load_manifest,
    manifest_from_dict,
    manifest_to_dict,
    save_manifest,
)
from repro.sim.parallel import run_observed_campaign
from repro.sim.profiling import StageTimings, collect_stage_timings
from repro.sim.sweep import sweep_range
from repro.sim.trials import TrialCampaign

ROOT = Path(__file__).resolve().parent.parent


def load_tool(name):
    spec = importlib.util.spec_from_file_location(
        name, ROOT / "tools" / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestSpans:
    def test_noop_without_tracer(self):
        assert active_tracer() is None
        with span("anything"):
            pass  # must not raise, must not record anywhere

    def test_nesting_builds_paths(self):
        with collect_spans() as tracer:
            with span("campaign"):
                with span("point"):
                    with span("trial"):
                        pass
                    with span("trial"):
                        pass
        assert tracer.counts == {
            ("campaign",): 1,
            ("campaign", "point"): 1,
            ("campaign", "point", "trial"): 2,
        }
        report = tracer.as_dict()
        assert set(report) == {"campaign", "campaign/point",
                               "campaign/point/trial"}
        assert report["campaign/point/trial"]["count"] == 2
        # The outer span's total covers the inner ones.
        assert (report["campaign"]["total_s"]
                >= report["campaign/point"]["total_s"])

    def test_nested_collectors_shadow(self):
        with collect_spans() as outer:
            with span("outer_only"):
                pass
            with collect_spans() as inner:
                with span("inner_only"):
                    pass
        assert ("outer_only",) in outer.counts
        assert ("inner_only",) not in outer.counts
        assert inner.counts == {("inner_only",): 1}
        assert active_tracer() is None

    def test_merge_adds_totals_and_counts(self):
        a, b = SpanTracer(), SpanTracer()
        a.add(("trial",), 1.0)
        a.add(("trial", "demod"), 0.5)
        b.add(("trial",), 2.0)
        b.add(("trial", "noise"), 0.25)
        a.merge(b)
        assert a.totals_s[("trial",)] == pytest.approx(3.0)
        assert a.counts[("trial",)] == 2
        assert a.counts[("trial", "demod")] == 1
        assert a.counts[("trial", "noise")] == 1

    def test_leaf_totals_collapse_differing_roots(self):
        tracer = SpanTracer()
        tracer.add(("point", "trial", "demod"), 1.0)
        tracer.add(("trial", "demod"), 2.0)
        totals, counts = tracer.leaf_totals()
        assert totals["demod"] == pytest.approx(3.0)
        assert counts["demod"] == 2

    def test_pickle_drops_live_stack(self):
        import pickle

        tracer = SpanTracer()
        tracer.add(("trial",), 1.0)
        tracer._stack.append("mid-span")
        clone = pickle.loads(pickle.dumps(tracer))
        assert clone.counts == tracer.counts
        assert clone._stack == []

    def test_stage_timings_facade_still_aggregates(self):
        with collect_stage_timings() as timings:
            with span("channel"):
                time.sleep(0.001)
            with span("channel"):
                pass
        report = timings.as_dict()
        assert report["channel"]["count"] == 2
        assert report["channel"]["total_s"] > 0.0

    def test_stage_timings_merge_tracer_uses_leaves(self):
        tracer = SpanTracer()
        tracer.add(("point", "trial", "demod"), 0.5)
        tracer.add(("trial", "demod"), 0.5)
        timings = StageTimings()
        timings.merge_tracer(tracer)
        report = timings.as_dict()
        assert report["demod"]["count"] == 2
        assert report["demod"]["total_s"] == pytest.approx(1.0)


class TestMetrics:
    def test_counter_gauge_histogram_in_isolated_registry(self):
        c = counter("test.obs.counter")
        g = gauge("test.obs.gauge")
        h = histogram("test.obs.hist", bounds=(1.0, 2.0))
        registry = MetricsRegistry()
        with use_registry(registry):
            c.inc()
            c.inc(2)
            g.set(7.5)
            for v in (0.5, 1.5, 99.0):
                h.observe(v)
        assert c.value(registry) == 3
        assert g.value(registry) == 7.5
        data = h.data(registry)
        assert data.bucket_counts == [1, 1, 1]
        assert data.count == 3
        # Nothing leaked into the default registry.
        assert "test.obs.counter" not in metrics_snapshot()["counters"]

    def test_instrument_registry_records_kind_and_help(self):
        counter("test.obs.help", "documented counter")
        kinds = instruments()
        assert kinds["test.obs.help"] == ("counter", "documented counter")
        with pytest.raises(ValueError):
            gauge("test.obs.help")

    def test_merge_snapshot_adds_counters_and_buckets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        c = counter("test.obs.merge")
        h = histogram("test.obs.merge_hist", bounds=(0.0,))
        with use_registry(a):
            c.inc(2)
            h.observe(-1.0)
        with use_registry(b):
            c.inc(3)
            h.observe(1.0)
        a.merge_snapshot(b.as_dict())
        assert a.counters["test.obs.merge"] == 5
        merged = a.histograms["test.obs.merge_hist"]
        assert merged.bucket_counts == [1, 1]
        assert merged.min_value == -1.0
        assert merged.max_value == 1.0

    def test_histogram_bounds_mismatch_rejected(self):
        a = HistogramData((0.0, 1.0))
        b = HistogramData((0.0, 2.0))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_empty_histogram_serializes_without_inf(self):
        data = HistogramData((0.0,)).as_dict()
        assert data["min"] is None and data["max"] is None
        json.dumps(data)  # must be JSON-safe

    def test_engine_instruments_are_registered(self):
        import repro.link.stats  # noqa: F401
        import repro.phy.receiver  # noqa: F401
        import repro.sim.cache  # noqa: F401
        import repro.sim.parallel  # noqa: F401

        kinds = instruments()
        for name, kind in [
            ("repro.sim.cache.hits", "counter"),
            ("repro.sim.cache.misses", "counter"),
            ("repro.sim.cache.evictions", "counter"),
            ("repro.sim.parallel.chunks", "counter"),
            ("repro.sim.parallel.worker_utilization", "gauge"),
            ("repro.phy.receiver.demods", "counter"),
            ("repro.phy.receiver.detect_failures", "counter"),
            ("repro.phy.receiver.crc_failures", "counter"),
            ("repro.phy.receiver.snr_db", "histogram"),
            ("repro.link.stats.frames_sent", "counter"),
            ("repro.link.stats.frames_delivered", "counter"),
        ]:
            assert kinds[name][0] == kind, name


class TestManifestRoundTrip:
    @pytest.fixture(scope="class")
    def observed_run(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("obs")
        scenarios = sweep_range(Scenario.river(), [50.0, 330.0])
        campaign = TrialCampaign(trials_per_point=3, seed=9)
        result, manifest = run_observed_campaign(
            scenarios,
            campaign,
            label="obs-test",
            workers=1,
            manifest_path=tmp / "run.manifest.json",
            events_path=tmp / "run.events.jsonl",
        )
        return tmp, result, manifest

    def test_manifest_records_the_run(self, observed_run):
        _, result, manifest = observed_run
        assert manifest.label == "obs-test"
        assert manifest.seed == 9
        assert manifest.workers == 1
        assert manifest.total_trials == result.total_trials == 6
        assert manifest.campaign["trials_per_point"] == 3
        assert len(manifest.scenarios) == 2
        assert manifest.scenarios[0]["range_m"] == pytest.approx(50.0)
        for stage in ("channel", "demod", "noise", "reflect"):
            assert any(path.endswith(stage) for path in manifest.timings)
        assert (
            manifest.metrics["counters"]["repro.phy.receiver.demods"] >= 6
        )

    def test_manifest_round_trips_through_disk(self, observed_run):
        tmp, _, manifest = observed_run
        loaded = load_manifest(tmp / "run.manifest.json")
        assert loaded == manifest
        raw = json.loads((tmp / "run.manifest.json").read_text())
        assert raw["schema"] == MANIFEST_SCHEMA_VERSION
        assert raw["kind"] == "run-manifest"

    def test_dict_round_trip_and_bad_kind_rejected(self, observed_run):
        _, _, manifest = observed_run
        record = manifest_to_dict(manifest)
        assert manifest_from_dict(record) == manifest
        record["kind"] = "something-else"
        with pytest.raises(ValueError):
            manifest_from_dict(record)

    def test_event_log_sequence(self, observed_run):
        tmp, _, manifest = observed_run
        events = read_events(tmp / "run.events.jsonl")
        names = [e["event"] for e in events]
        assert names[0] == "campaign_start"
        assert names[-1] == "campaign_end"
        assert names.count("point_end") == 2
        point_ends = [e for e in events if e["event"] == "point_end"]
        assert [e["point"] for e in point_ends] == [0, 1]
        for e in point_ends:
            assert e["trials"] == 3
            assert e["elapsed_s"] >= 0.0
        assert manifest.events_path == str(tmp / "run.events.jsonl")

    def test_report_renders_breakdowns(self, observed_run):
        tmp, _, manifest = observed_run
        events = read_events(tmp / "run.events.jsonl")
        report = render_report(manifest, events)
        assert "=== run: obs-test (seed 9) ===" in report
        assert "--- per-stage breakdown ---" in report
        assert "--- per-point breakdown ---" in report
        assert "--- metrics ---" in report
        assert "demod" in report
        assert "repro.phy.receiver.demods" in report
        # Two point rows: 50 m and 330 m.
        assert "\n0      50" in report
        assert "\n1      330" in report

    def test_report_names_the_engine(self, observed_run):
        # Stock receivers under the auto engine: all trials batched,
        # and the report says so.
        _, _, manifest = observed_run
        report = render_report(manifest)
        assert "dispatch   : batched (6 trials)" in report

    def test_engine_line_variants(self):
        from repro.obs.report import engine_line

        batched = "repro.sim.trials.batched_trials"
        fallback = "repro.sim.trials.fallback_trials"
        assert engine_line({"counters": {}}) is None
        assert engine_line({"counters": {batched: 8}}) == "batched (8 trials)"
        assert engine_line(
            {"counters": {fallback: 3}}
        ) == "per-trial fallback (3 trials)"
        assert engine_line(
            {"counters": {batched: 5, fallback: 2}}
        ) == "mixed (5 batched, 2 per-trial fallback)"

    def test_event_log_is_lazy(self, tmp_path):
        log = EventLog(tmp_path / "never.jsonl")
        log.close()
        assert not (tmp_path / "never.jsonl").exists()
        with EventLog(tmp_path / "one.jsonl") as written:
            written.emit("ping", value=1)
        assert read_events(tmp_path / "one.jsonl") == [
            {"ts": pytest.approx(time.time(), abs=60), "event": "ping",
             "value": 1}
        ]

    def test_scenario_snapshot_is_json_safe(self):
        snapshot = scenario_snapshot(Scenario.ocean(sea_state=4))
        json.dumps(snapshot)
        assert snapshot["range_m"] > 0
        assert snapshot["fs"] > 0


class TestEventLogDurability:
    def test_every_emit_is_flushed_to_disk(self, tmp_path):
        # A crash mid-run must not lose already-emitted lines: read the
        # file while the log is still open, before any close().
        log = EventLog(tmp_path / "live.jsonl")
        try:
            log.emit("first", n=1)
            log.emit("second", n=2)
            on_disk = read_events(tmp_path / "live.jsonl")
            assert [e["event"] for e in on_disk] == ["first", "second"]
        finally:
            log.close()

    def test_torn_final_line_is_dropped_by_default(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text(
            '{"ts": 1.0, "event": "ok"}\n{"ts": 2.0, "event": "tru'
        )
        events = read_events(path)
        assert [e["event"] for e in events] == ["ok"]

    def test_strict_mode_raises_on_torn_line(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text('{"ts": 1.0, "event": "ok"}\n{"broken')
        with pytest.raises(json.JSONDecodeError):
            read_events(path, strict=True)

    def test_corruption_before_the_end_raises_even_when_lenient(
        self, tmp_path
    ):
        # Only a torn *final* line is the crash signature; garbage in
        # the middle means something worse happened and must surface.
        path = tmp_path / "mid.jsonl"
        path.write_text('{"broken\n{"ts": 2.0, "event": "ok"}\n')
        with pytest.raises(json.JSONDecodeError):
            read_events(path)

    def test_concurrent_emits_interleave_whole_lines(self, tmp_path):
        import threading

        path = tmp_path / "threads.jsonl"
        with EventLog(path) as log:
            def hammer(tag):
                for i in range(100):
                    log.emit("tick", tag=tag, i=i)

            threads = [
                threading.Thread(target=hammer, args=(t,)) for t in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        events = read_events(path, strict=True)
        assert len(events) == 400
        assert all(e["event"] == "tick" for e in events)


class TestStageRowsEdgeCases:
    def test_empty_timings_dict(self):
        from repro.obs.report import stage_rows

        assert stage_rows({}) == []

    def test_multiple_root_spans_sum_into_the_share_base(self):
        from repro.obs.report import stage_rows

        # Two roots (e.g. a tracer reused across two campaigns): shares
        # are fractions of the *combined* root total.
        timings = {
            "alpha": {"total_s": 3.0, "count": 1, "mean_ms": 3000.0},
            "beta": {"total_s": 1.0, "count": 1, "mean_ms": 1000.0},
            "alpha/work": {"total_s": 2.0, "count": 4, "mean_ms": 500.0},
        }
        rows = {r["stage"]: r for r in stage_rows(timings)}
        assert rows["alpha"]["share"] == pytest.approx(3.0 / 4.0)
        assert rows["work"]["share"] == pytest.approx(2.0 / 4.0)

    def test_rootless_timings_fall_back_to_largest_stage(self):
        from repro.obs.report import stage_rows

        timings = {
            "a/b": {"total_s": 4.0, "count": 2, "mean_ms": 2000.0},
            "a/c": {"total_s": 1.0, "count": 1, "mean_ms": 1000.0},
        }
        rows = {r["stage"]: r for r in stage_rows(timings)}
        assert rows["b"]["share"] == pytest.approx(1.0)
        assert rows["c"]["share"] == pytest.approx(0.25)

    def test_events_only_report(self):
        # A manifest with no timings and no results still renders: the
        # header plus whatever the event log contributes.
        manifest = RunManifest(
            label="bare", seed=1, version="1.0", created_unix=0.0,
            elapsed_s=0.0, workers=1,
        )
        report = render_report(
            manifest,
            [{"ts": 1.0, "event": "point_end", "point": 0,
              "elapsed_s": 0.5}],
        )
        assert "=== run: bare (seed 1) ===" in report
        assert "--- per-stage breakdown ---" not in report
        assert "--- per-point breakdown ---" not in report


class TestBenchTimeline:
    def make_doc(self, bench, serial, parallel=None):
        doc = {
            "bench": bench,
            "name": "campaign-engine",
            "optimized_serial": {"trials_per_sec": serial, "trials": 25,
                                 "elapsed_s": 1.0},
        }
        if parallel is not None:
            doc["optimized_parallel"] = {
                "trials_per_sec": parallel, "trials": 25, "elapsed_s": 1.0,
            }
        return doc

    def test_rows_pick_up_every_arm(self):
        from repro.obs.report import bench_timeline_rows

        rows = bench_timeline_rows(
            [self.make_doc("BENCH_1", 100.0, 90.0)]
        )
        assert rows[0]["arms"] == {
            "optimized_serial": 100.0, "optimized_parallel": 90.0,
        }

    def test_render_tracks_speedup_over_first_bench(self):
        from repro.obs.report import render_timeline

        table = render_timeline([
            self.make_doc("BENCH_1", 100.0),
            self.make_doc("BENCH_2", 250.0, 240.0),
        ])
        assert "BENCH_1" in table and "BENCH_2" in table
        assert "2.50x" in table
        assert "-" in table  # BENCH_1 has no parallel arm

    def test_empty_is_not_an_error(self):
        from repro.obs.report import render_timeline

        assert "no benchmark records" in render_timeline([])

    def test_load_bench_files_orders_numerically(self, tmp_path):
        from repro.obs.report import load_bench_files

        for n in (1, 2, 10):
            (tmp_path / f"BENCH_{n}.json").write_text(
                json.dumps(self.make_doc(f"BENCH_{n}", float(n)))
            )
        docs = load_bench_files(tmp_path)
        assert [d["bench"] for d in docs] == [
            "BENCH_1", "BENCH_2", "BENCH_10",
        ]


class TestBenchCompare:
    @staticmethod
    def record(serial_rate, parallel_rate=None, trials=25):
        return {
            "config": {"trials_per_point": trials},
            "seed_baseline": {"trials_per_sec": 10.0, "trials": trials},
            "optimized_serial": {"trials_per_sec": serial_rate,
                                 "trials": trials},
            "optimized_parallel": {
                "trials_per_sec": parallel_rate or serial_rate * 3,
                "trials": trials,
            },
        }

    def test_small_change_passes(self):
        bench_compare = load_tool("bench_compare")
        rows, regressions = bench_compare.compare(
            self.record(100.0), self.record(90.0)
        )
        assert regressions == []
        assert {r["arm"] for r in rows} == {
            "seed_baseline", "optimized_serial", "optimized_parallel"
        }

    def test_big_drop_flags_gated_arm_only(self):
        bench_compare = load_tool("bench_compare")
        old = self.record(100.0)
        new = self.record(70.0, parallel_rate=290.0)
        new["seed_baseline"]["trials_per_sec"] = 1.0  # info arm: ignored
        _, regressions = bench_compare.compare(old, new)
        assert [r["arm"] for r in regressions] == ["optimized_serial"]
        assert regressions[0]["change"] == pytest.approx(-0.3)

    def test_main_exit_codes(self, tmp_path, capsys):
        bench_compare = load_tool("bench_compare")
        ok_old = tmp_path / "BENCH_1.json"
        ok_new = tmp_path / "BENCH_2.json"
        ok_old.write_text(json.dumps(self.record(100.0)))
        ok_new.write_text(json.dumps(self.record(95.0)))
        assert bench_compare.main(["--dir", str(tmp_path)]) == 0
        assert "OK" in capsys.readouterr().out

        ok_new.write_text(json.dumps(self.record(10.0)))
        assert bench_compare.main(["--dir", str(tmp_path)]) == 1
        assert "REGRESSION" in capsys.readouterr().err

        assert bench_compare.main(
            [str(ok_old), str(tmp_path / "missing.json")]
        ) == 2

    def test_arms_narrows_the_gate(self):
        # Only the serial arm is gated: a parallel collapse (noisy on
        # small boxes) is reported but no longer fails the check.
        bench_compare = load_tool("bench_compare")
        old = self.record(100.0, parallel_rate=300.0)
        new = self.record(99.0, parallel_rate=100.0)
        rows, regressions = bench_compare.compare(
            old, new, threshold=0.02, arms=("optimized_serial",)
        )
        assert regressions == []
        by_arm = {r["arm"]: r for r in rows}
        assert by_arm["optimized_serial"]["gated"]
        assert not by_arm["optimized_parallel"]["gated"]

    def test_main_arms_flag(self, tmp_path, capsys):
        bench_compare = load_tool("bench_compare")
        old = tmp_path / "BENCH_1.json"
        new = tmp_path / "BENCH_2.json"
        old.write_text(json.dumps(self.record(100.0, parallel_rate=300.0)))
        new.write_text(json.dumps(self.record(100.0, parallel_rate=50.0)))
        assert bench_compare.main(["--dir", str(tmp_path)]) == 1
        capsys.readouterr()
        assert bench_compare.main(
            ["--dir", str(tmp_path), "--arms", "optimized_serial"]
        ) == 0
        assert "(info)" in capsys.readouterr().out

    def test_main_rejects_unknown_arm(self, tmp_path):
        bench_compare = load_tool("bench_compare")
        with pytest.raises(SystemExit):
            bench_compare.main(["--dir", str(tmp_path), "--arms", "warp"])

    def test_lint_warm_gates_on_its_own_threshold(self):
        # lint_warm alerts only past its 2x-slower override, not the
        # global 20% default: warm-lint wall time is sub-second and
        # jitters far more than the campaign arms.
        bench_compare = load_tool("bench_compare")
        old = self.record(100.0)
        new = self.record(95.0)
        old["lint_warm"] = {"trials_per_sec": 300.0, "trials": 366}
        new["lint_warm"] = {"trials_per_sec": 180.0, "trials": 366}
        _, regressions = bench_compare.compare(old, new)
        assert regressions == []  # -40% is within the lint_warm budget

        new["lint_warm"]["trials_per_sec"] = 120.0  # -60%: > 2x slower
        _, regressions = bench_compare.compare(old, new)
        assert [r["arm"] for r in regressions] == ["lint_warm"]

    def test_fewer_than_two_records_is_not_an_error(self, tmp_path, capsys):
        bench_compare = load_tool("bench_compare")
        assert bench_compare.main(["--dir", str(tmp_path)]) == 0
        assert "nothing to check" in capsys.readouterr().out

    def test_config_mismatch_is_warned(self, tmp_path, capsys):
        bench_compare = load_tool("bench_compare")
        old = self.record(100.0)
        new = self.record(100.0, trials=50)
        (tmp_path / "BENCH_1.json").write_text(json.dumps(old))
        (tmp_path / "BENCH_2.json").write_text(json.dumps(new))
        assert bench_compare.main(["--dir", str(tmp_path)]) == 0
        assert "config differs: trials_per_point" in capsys.readouterr().out


class TestLinkStatsZeroDenominators:
    def test_delivery_ratio_zero_when_nothing_sent(self):
        stats = LinkStats()
        assert stats.delivery_ratio == 0.0

    def test_goodput_zero_without_busy_time(self):
        stats = LinkStats(payload_bits_delivered=96)
        assert stats.goodput_bps() == 0.0

    def test_summary_is_finite_on_empty_stats(self):
        summary = LinkStats().summary()
        assert summary["delivery_ratio"] == 0.0
        assert summary["goodput_bps"] == 0.0
        json.dumps(summary)

    def test_record_methods_mirror_into_active_registry(self):
        registry = MetricsRegistry()
        stats = LinkStats()
        with use_registry(registry):
            stats.record_attempt(node_id=1)
            stats.record_delivery(node_id=1, payload_bits=64)
            stats.record_collision()
            stats.record_idle_slot()
        assert registry.counters["repro.link.stats.frames_sent"] == 1
        assert registry.counters["repro.link.stats.frames_delivered"] == 1
        assert registry.counters["repro.link.stats.collisions"] == 1
        assert registry.counters["repro.link.stats.idle_slots"] == 1
        assert stats.delivery_ratio == 1.0
