"""Batched PHY kernels: vectorised stages vs their scalar references.

Two kinds of contract live here:

* **Bitwise** — the batched noise generators, frame codecs, and CRC are
  required to reproduce their scalar counterparts exactly (integer ops,
  or float ops in identical order), and ``demodulate_batch`` must equal
  the per-record ``demodulate`` (which delegates to the same kernel).
* **Tolerance** — the FFT-based batched correlation matches the
  time-domain scalar form only to ~1e-12; its peak decisions must
  still agree.
"""

import numpy as np
import pytest

from repro.dsp.correlate import normalized_correlation, normalized_correlation_batch
from repro.dsp.noisegen import (
    colored_noise,
    colored_noise_batch,
    white_noise,
    white_noise_batch,
)
from repro.acoustics.noise import NoiseConditions
from repro.phy import BatchedReaderReceiver, batch_supported
from repro.phy.coding import (
    fm0_decode,
    fm0_decode_batch,
    fm0_encode,
    fm0_encode_batch,
)
from repro.phy.crc import crc16_ccitt, crc16_ccitt_batch
from repro.phy.frame import (
    FrameConfig,
    build_frame,
    build_frames_batch,
    parse_frame,
    parse_frames_batch,
)
from repro.phy.receiver import ReaderReceiver


class TestBatchSupportGate:
    def test_stock_receiver_supported(self):
        assert batch_supported(ReaderReceiver(fs=16000.0, chip_rate=2000.0))

    @pytest.mark.parametrize(
        "overrides",
        [{"rake_taps": 2}, {"equalizer_taps": 8}, {"timing_search": 1}],
    )
    def test_extended_receivers_unsupported(self, overrides):
        rx = ReaderReceiver(fs=16000.0, chip_rate=2000.0, **overrides)
        assert not batch_supported(rx)
        with pytest.raises(ValueError):
            BatchedReaderReceiver(rx)

    def test_subclasses_unsupported(self):
        class Tweaked(ReaderReceiver):
            pass

        assert not batch_supported(Tweaked(fs=16000.0, chip_rate=2000.0))


def _records(n_trials, seed=0, noise=0.08):
    """Noisy baseband records, each carrying one decodable frame.

    Synthetic OOK-style records (chips upsampled, rotated by a random
    carrier phase and a small CFO, DC leak and white noise on top) —
    enough to exercise every receiver stage without the channel engine.
    """
    rng = np.random.default_rng(seed)
    fs, sps = 16000.0, 8
    records = []
    for _ in range(n_trials):
        payload = bytes(rng.integers(0, 256, size=8, dtype=np.uint8))
        chips = np.concatenate(
            [np.zeros(40, np.int64), build_frame(5, payload),
             np.zeros(40, np.int64)]
        )
        wave = np.repeat(chips.astype(np.float64), sps)
        t_axis = np.arange(len(wave)) / fs
        rotation = np.exp(
            1j * (rng.uniform(0, 2 * np.pi) + 2 * np.pi * rng.uniform(-8, 8) * t_axis)
        )
        awgn = noise * (
            rng.standard_normal(len(wave))
            + 1j * rng.standard_normal(len(wave))
        )
        records.append(wave * rotation + 0.7 + awgn)
    return np.stack(records)


class TestDemodulateBatch:
    def test_batch_equals_per_record_demodulation(self):
        records = _records(5)
        rx = ReaderReceiver(fs=16000.0, chip_rate=2000.0)
        batched = BatchedReaderReceiver(rx).demodulate_batch(records)
        for row, got in zip(records, batched):
            want = rx.demodulate(row)
            assert (want.frame is None) == (got.frame is None)
            assert want.frame == got.frame
            assert want.detection == got.detection
            assert want.snr_db == got.snr_db
            assert want.success == got.success
            assert want.cfo_hz == got.cfo_hz
            assert np.array_equal(want.chip_soft, got.chip_soft)

    def test_batch_size_invariance(self):
        records = _records(6, seed=9)
        rx = ReaderReceiver(fs=16000.0, chip_rate=2000.0)
        batched = BatchedReaderReceiver(rx)
        whole = batched.demodulate_batch(records)
        parts = batched.demodulate_batch(
            records[:2]
        ) + batched.demodulate_batch(records[2:])
        for a, b in zip(whole, parts):
            assert a.snr_db == b.snr_db
            assert a.frame == b.frame
            assert np.array_equal(a.chip_soft, b.chip_soft)

    def test_empty_and_undetectable_records(self):
        rx = ReaderReceiver(fs=16000.0, chip_rate=2000.0)
        batched = BatchedReaderReceiver(rx)
        assert batched.demodulate_batch(np.zeros((0, 128))) == []
        silent = batched.demodulate_batch(np.zeros((3, 4096)))
        assert [r.success for r in silent] == [False] * 3
        assert [r.detection for r in silent] == [None] * 3


class TestBatchedCorrelation:
    def test_matches_scalar_within_fft_tolerance(self):
        rng = np.random.default_rng(5)
        template = rng.normal(size=64)
        signals = rng.normal(size=(7, 500)) + 1j * rng.normal(size=(7, 500))
        batch = normalized_correlation_batch(signals, template)
        for t in range(7):
            scalar = normalized_correlation(signals[t], template)
            np.testing.assert_allclose(batch[t], scalar, atol=1e-10)
            assert int(np.argmax(batch[t])) == int(np.argmax(scalar))

    def test_short_signals_yield_empty(self):
        out = normalized_correlation_batch(np.zeros((3, 5)), np.ones(10))
        assert out.shape == (3, 0)


class TestBatchedNoise:
    def test_white_noise_rows_bitwise_match_scalar_streams(self):
        rngs = [np.random.default_rng((1, t)) for t in range(4)]
        batch = white_noise_batch(256, 2.5, rngs)
        for t in range(4):
            want = white_noise(256, 2.5, np.random.default_rng((1, t)))
            assert np.array_equal(batch[t], want)

    def test_colored_noise_rows_bitwise_match_scalar_streams(self):
        psd = NoiseConditions().psd_db
        rngs = [np.random.default_rng((2, t)) for t in range(4)]
        batch = colored_noise_batch(512, 192_000.0, psd, 18_500.0, rngs)
        for t in range(4):
            want = colored_noise(
                512, 192_000.0, psd, 18_500.0, np.random.default_rng((2, t))
            )
            assert np.array_equal(batch[t], want)


class TestBatchedFrameCodecs:
    def test_crc_batch_matches_scalar(self):
        rng = np.random.default_rng(3)
        for n in (0, 1, 7, 8, 9, 100, 230):
            bits = rng.integers(0, 2, size=(6, n))
            want = np.stack([crc16_ccitt(bits[i]) for i in range(6)])
            assert np.array_equal(crc16_ccitt_batch(bits), want)

    def test_fm0_batch_matches_scalar(self):
        rng = np.random.default_rng(4)
        bits = rng.integers(0, 2, size=(5, 37))
        for level in (0, 1):
            want = np.stack([fm0_encode(bits[i], level) for i in range(5)])
            assert np.array_equal(fm0_encode_batch(bits, level), want)
        chips = rng.integers(0, 2, size=(5, 74))
        got_bits, got_violations = fm0_decode_batch(chips)
        for i in range(5):
            want_bits, want_violations = fm0_decode(chips[i])
            assert np.array_equal(got_bits[i], want_bits)
            assert got_violations[i] == want_violations

    def test_build_frames_batch_matches_scalar(self):
        rng = np.random.default_rng(6)
        payloads = [
            bytes(rng.integers(0, 256, size=8, dtype=np.uint8))
            for _ in range(7)
        ]
        want = np.stack([build_frame(9, p) for p in payloads])
        assert np.array_equal(build_frames_batch(9, payloads), want)

    def test_build_frames_batch_rejects_mixed_lengths(self):
        with pytest.raises(ValueError, match="one length"):
            build_frames_batch(1, [b"ab", b"abc"])

    def test_parse_frames_batch_matches_scalar(self):
        rng = np.random.default_rng(8)
        config = FrameConfig()
        payloads = [
            bytes(rng.integers(0, 256, size=8, dtype=np.uint8))
            for _ in range(10)
        ]
        frames = build_frames_batch(2, payloads, config)
        chips = frames[:, len(config.preamble):]
        # Corrupt chips (some rows will mis-decode the length byte),
        # truncate others below the header / frame thresholds.
        chips = np.where(rng.random(chips.shape) < 0.05, 1 - chips, chips)
        n_chips = np.full(len(payloads), chips.shape[1])
        n_chips[0] = 3
        n_chips[1] = 40
        want = [
            parse_frame(chips[t, : n_chips[t]], config)
            for t in range(len(payloads))
        ]
        got = parse_frames_batch(chips, n_chips, config)
        assert got == want
