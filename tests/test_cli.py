"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["budget"])
        assert args.site == "river"
        assert args.range == 100.0
        assert args.elements == 4


class TestBudget:
    def test_river(self, capsys):
        assert main(["budget", "--site", "river", "--range", "150"]) == 0
        out = capsys.readouterr().out
        assert "max range @1e-3" in out
        assert "SNR" in out

    def test_ocean_with_sea_state(self, capsys):
        assert main(["budget", "--site", "ocean", "--sea-state", "4"]) == 0
        out = capsys.readouterr().out
        assert "ocean-ss4" in out

    def test_elements_change_gain(self, capsys):
        main(["budget", "--elements", "8"])
        out8 = capsys.readouterr().out
        main(["budget", "--elements", "2"])
        out2 = capsys.readouterr().out
        assert out8 != out2


class TestSweep:
    def test_small_sweep(self, capsys):
        code = main([
            "sweep", "--start", "40", "--stop", "120",
            "--points", "2", "--trials", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "max range at BER<=1e-3" in out
        assert out.count("\n") >= 4

    def test_workers_do_not_change_the_table(self, capsys):
        argv = [
            "sweep", "--start", "40", "--stop", "120",
            "--points", "2", "--trials", "2",
        ]
        assert main(argv) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + ["--workers", "2"]) == 0
        parallel_out = capsys.readouterr().out
        assert parallel_out == serial_out


class TestObsReport:
    def test_sweep_manifest_then_report(self, capsys, tmp_path):
        manifest = tmp_path / "run.manifest.json"
        events = tmp_path / "run.events.jsonl"
        code = main([
            "sweep", "--start", "40", "--stop", "120",
            "--points", "2", "--trials", "2",
            "--manifest", str(manifest), "--events", str(events),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert f"manifest: {manifest}" in out
        assert manifest.exists() and events.exists()

        assert main(["obs", "report", str(manifest)]) == 0
        report = capsys.readouterr().out
        assert "=== run: river (seed 1) ===" in report
        assert "--- per-stage breakdown ---" in report
        assert "--- per-point breakdown ---" in report
        assert "--- metrics ---" in report
        for stage in ("channel", "demod", "noise", "reflect"):
            assert stage in report
        # Per-point wall clocks come from the event log referenced by
        # the manifest; with the log present no wall_s cell is empty.
        point_section = report.split("--- per-point breakdown ---")[1]
        assert "wall_s" in point_section

    def test_report_missing_manifest_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["obs", "report", str(tmp_path / "nope.json")])

    def test_report_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs"])


class TestObsLedgerVerbs:
    SWEEP = [
        "sweep", "--start", "40", "--stop", "120",
        "--points", "2", "--trials", "2", "--no-progress",
    ]

    def test_sweep_into_ledger_then_ls_diff_trace(self, capsys, tmp_path):
        ledger = str(tmp_path / "ledger")
        events = tmp_path / "run.events.jsonl"

        # Same configuration twice: one ledger entry, two runs.
        assert main(self.SWEEP + ["--ledger", ledger,
                                  "--events", str(events)]) == 0
        assert main(self.SWEEP + ["--ledger", ledger]) == 0
        # A different sweep: its own entry.
        assert main([
            "sweep", "--start", "60", "--stop", "200",
            "--points", "2", "--trials", "2", "--no-progress",
            "--ledger", ledger,
        ]) == 0
        capsys.readouterr()

        assert main(["obs", "ls", "--ledger", ledger]) == 0
        listing = capsys.readouterr().out
        assert "2 configuration(s)" in listing

        # Diff the two distinct configurations by key prefix.
        import re

        keys = re.findall(r"^([0-9a-f]{12})\s", listing, flags=re.M)
        assert len(keys) == 2
        assert main([
            "obs", "diff", keys[0], keys[1], "--ledger", ledger,
        ]) == 1  # exit 1: the runs differ
        diff_out = capsys.readouterr().out
        assert "different configuration keys" in diff_out
        assert "range_m" in diff_out

        trace_path = tmp_path / "run.trace.json"
        assert main([
            "obs", "trace", keys[0], "--ledger", ledger,
            "-o", str(trace_path),
        ]) == 0
        import json

        from repro.obs.trace import validate_trace_events

        doc = json.loads(trace_path.read_text())
        assert validate_trace_events(doc) > 0

    def test_diff_identical_runs_exits_zero(self, capsys, tmp_path):
        ledger = str(tmp_path / "ledger")
        assert main(self.SWEEP + ["--ledger", ledger]) == 0
        capsys.readouterr()
        assert main(["obs", "ls", "--ledger", ledger]) == 0
        listing = capsys.readouterr().out
        import re

        (key,) = re.findall(r"^([0-9a-f]{12})\s", listing, flags=re.M)
        assert main(["obs", "diff", key, key, "--ledger", ledger]) == 0

    def test_diff_accepts_manifest_files(self, capsys, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        assert main(self.SWEEP + ["--manifest", str(a)]) == 0
        assert main(self.SWEEP + ["--manifest", str(b)]) == 0
        capsys.readouterr()
        assert main(["obs", "diff", str(a), str(b)]) == 0

    def test_trace_from_manifest_file(self, capsys, tmp_path):
        manifest = tmp_path / "run.json"
        events = tmp_path / "run.jsonl"
        assert main(self.SWEEP + [
            "--manifest", str(manifest), "--events", str(events),
        ]) == 0
        capsys.readouterr()
        out_path = tmp_path / "out.trace.json"
        assert main([
            "obs", "trace", str(manifest), "-o", str(out_path),
        ]) == 0
        assert "trace events" in capsys.readouterr().out
        assert out_path.exists()

    def test_timeline_reads_repo_bench_records(self, capsys):
        from pathlib import Path

        root = Path(__file__).resolve().parent.parent
        assert main(["obs", "timeline", str(root)]) == 0
        out = capsys.readouterr().out
        assert "BENCH_1" in out and "BENCH_3" in out
        assert "optimized_serial" in out

    def test_probes_flag_sets_mode_for_the_run(self, capsys):
        from repro.obs.probes import probe_mode, set_probe_mode

        before = probe_mode()
        try:
            assert main(self.SWEEP + ["--probes", "raise"]) == 0
            assert probe_mode() == "raise"
        finally:
            set_probe_mode(before)


class TestPattern:
    def test_table_shape(self, capsys):
        assert main(["pattern", "--elements", "4", "--step", "30"]) == 0
        out = capsys.readouterr().out
        # -60, -30, 0, 30, 60 plus header.
        assert len(out.strip().splitlines()) == 6
        assert "van_atta_db" in out


class TestTrial:
    def test_short_range_succeeds(self, capsys):
        assert main(["trial", "--range", "40"]) == 0
        out = capsys.readouterr().out
        assert "frame ok    : True" in out

    def test_absurd_range_fails(self, capsys):
        assert main(["trial", "--range", "5000"]) == 1


class TestInventory:
    def test_clean_inventory(self, capsys):
        assert main(["inventory", "--nodes", "5", "--q", "3"]) == 0
        out = capsys.readouterr().out
        assert "inventoried : 5/5" in out

    def test_lossy_inventory_still_completes(self, capsys):
        code = main([
            "inventory", "--nodes", "4", "--q", "2",
            "--downlink-loss", "0.1", "--uplink-loss", "0.1",
        ])
        assert code == 0


class TestAdapt:
    def test_picks_fast_close(self, capsys):
        assert main(["adapt", "--range", "50"]) == 0
        out = capsys.readouterr().out
        assert "selected: fast" in out

    def test_picks_coded_far(self, capsys):
        assert main(["adapt", "--range", "420"]) == 0
        out = capsys.readouterr().out
        assert "selected: slow" in out

    def test_out_of_range_exits_nonzero(self, capsys):
        assert main(["adapt", "--range", "2000"]) == 1
