"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["budget"])
        assert args.site == "river"
        assert args.range == 100.0
        assert args.elements == 4


class TestBudget:
    def test_river(self, capsys):
        assert main(["budget", "--site", "river", "--range", "150"]) == 0
        out = capsys.readouterr().out
        assert "max range @1e-3" in out
        assert "SNR" in out

    def test_ocean_with_sea_state(self, capsys):
        assert main(["budget", "--site", "ocean", "--sea-state", "4"]) == 0
        out = capsys.readouterr().out
        assert "ocean-ss4" in out

    def test_elements_change_gain(self, capsys):
        main(["budget", "--elements", "8"])
        out8 = capsys.readouterr().out
        main(["budget", "--elements", "2"])
        out2 = capsys.readouterr().out
        assert out8 != out2


class TestSweep:
    def test_small_sweep(self, capsys):
        code = main([
            "sweep", "--start", "40", "--stop", "120",
            "--points", "2", "--trials", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "max range at BER<=1e-3" in out
        assert out.count("\n") >= 4

    def test_workers_do_not_change_the_table(self, capsys):
        argv = [
            "sweep", "--start", "40", "--stop", "120",
            "--points", "2", "--trials", "2",
        ]
        assert main(argv) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + ["--workers", "2"]) == 0
        parallel_out = capsys.readouterr().out
        assert parallel_out == serial_out


class TestObsReport:
    def test_sweep_manifest_then_report(self, capsys, tmp_path):
        manifest = tmp_path / "run.manifest.json"
        events = tmp_path / "run.events.jsonl"
        code = main([
            "sweep", "--start", "40", "--stop", "120",
            "--points", "2", "--trials", "2",
            "--manifest", str(manifest), "--events", str(events),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert f"manifest: {manifest}" in out
        assert manifest.exists() and events.exists()

        assert main(["obs", "report", str(manifest)]) == 0
        report = capsys.readouterr().out
        assert "=== run: river (seed 1) ===" in report
        assert "--- per-stage breakdown ---" in report
        assert "--- per-point breakdown ---" in report
        assert "--- metrics ---" in report
        for stage in ("channel", "demod", "noise", "reflect"):
            assert stage in report
        # Per-point wall clocks come from the event log referenced by
        # the manifest; with the log present no wall_s cell is empty.
        point_section = report.split("--- per-point breakdown ---")[1]
        assert "wall_s" in point_section

    def test_report_missing_manifest_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["obs", "report", str(tmp_path / "nope.json")])

    def test_report_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs"])


class TestPattern:
    def test_table_shape(self, capsys):
        assert main(["pattern", "--elements", "4", "--step", "30"]) == 0
        out = capsys.readouterr().out
        # -60, -30, 0, 30, 60 plus header.
        assert len(out.strip().splitlines()) == 6
        assert "van_atta_db" in out


class TestTrial:
    def test_short_range_succeeds(self, capsys):
        assert main(["trial", "--range", "40"]) == 0
        out = capsys.readouterr().out
        assert "frame ok    : True" in out

    def test_absurd_range_fails(self, capsys):
        assert main(["trial", "--range", "5000"]) == 1


class TestInventory:
    def test_clean_inventory(self, capsys):
        assert main(["inventory", "--nodes", "5", "--q", "3"]) == 0
        out = capsys.readouterr().out
        assert "inventoried : 5/5" in out

    def test_lossy_inventory_still_completes(self, capsys):
        code = main([
            "inventory", "--nodes", "4", "--q", "2",
            "--downlink-loss", "0.1", "--uplink-loss", "0.1",
        ])
        assert code == 0


class TestAdapt:
    def test_picks_fast_close(self, capsys):
        assert main(["adapt", "--range", "50"]) == 0
        out = capsys.readouterr().out
        assert "selected: fast" in out

    def test_picks_coded_far(self, capsys):
        assert main(["adapt", "--range", "420"]) == 0
        out = capsys.readouterr().out
        assert "selected: slow" in out

    def test_out_of_range_exits_nonzero(self, capsys):
        assert main(["adapt", "--range", "2000"]) == 1
