"""Clean twin: dB-domain quantities compose additively."""


def total_gain_db(array_gain_db: float, processing_gain_db: float) -> float:
    """dB gains add; the product lives in the linear domain."""
    combined_db = array_gain_db + processing_gain_db
    return combined_db


def loss_ratio(tx_loss_db: float, rx_loss_db: float) -> float:
    """A linear ratio of dB losses is a dB difference, then a power of 10."""
    return 10.0 ** ((tx_loss_db - rx_loss_db) / 10.0)
