"""Clean twin: keepdims (or an explicit new axis) keeps blocks aligned."""

import numpy as np

from repro.analysis.shapes.vocab import FloatShaped


def centre(
    records: FloatShaped["trials", "samples"]
) -> FloatShaped["trials", "samples"]:
    """Remove the per-trial mean with the reduced axis kept."""
    means = records.mean(axis=1, keepdims=True)
    return records - means


def outer_gain(
    per_trial: FloatShaped["trials"], per_sample: FloatShaped["samples"]
) -> np.ndarray:
    """Combine per-axis gains over an explicit outer product."""
    return per_trial[:, None] * per_sample
