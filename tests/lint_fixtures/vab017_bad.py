"""Deliberate VAB017 violations: hidden inputs reaching memoized code."""

import functools
import os
import time


def _gain_override() -> float:
    """Un-annotated helper: its environ read propagates to callers."""
    return float(os.getenv("VAB_GAIN", "1.0"))


@functools.lru_cache(maxsize=None)
def cached_gain(freq_hz: float) -> float:
    return freq_hz * _gain_override()


@functools.lru_cache(maxsize=None)
def cached_stamp(freq_hz: float) -> float:
    return freq_hz + time.time()
