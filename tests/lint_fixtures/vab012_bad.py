"""Deliberate VAB012 violations: reductions that eat the batch block."""

from repro.analysis.shapes.vocab import FloatShaped


def mean_power(power: FloatShaped["trials", "samples"]) -> float:
    """Average power -- wrongly, collapsing the trials batch silently."""
    return float(power.mean())


def per_trial_power(
    power: FloatShaped["trials", "samples"]
) -> FloatShaped["trials"]:
    """Per-trial power -- wrongly, reducing an axis that does not exist."""
    return power.sum(axis=2)
