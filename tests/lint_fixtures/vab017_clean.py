"""Clean twin of vab017_bad: every input of a memoized function is an
argument, so the cache key sees everything that can change the result."""

import functools


@functools.lru_cache(maxsize=None)
def cached_gain(freq_hz: float, gain: float) -> float:
    return freq_hz * gain


@functools.lru_cache(maxsize=None)
def cached_stamp(freq_hz: float, t0_s: float) -> float:
    return freq_hz + t0_s
