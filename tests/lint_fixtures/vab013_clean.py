"""Clean twin: magnitudes and real parts are taken explicitly."""

import numpy as np

from repro.analysis.shapes.vocab import ComplexShaped, FloatShaped


def peak_level(field: ComplexShaped["angles"]) -> float:
    """Scalar level via the explicit magnitude."""
    return float(np.abs(field[0]))


def store_first(field: ComplexShaped["angles"]) -> np.ndarray:
    """Buffer the first sample in a complex-dtype buffer."""
    out = np.zeros(4, dtype=np.complex128)
    out[0] = field[0]
    return out


def positive_lobes(field: ComplexShaped["angles"]) -> np.ndarray:
    """Lobe mask over the magnitude, which orders cleanly."""
    return np.abs(field) > 0.0


def scaled(field: ComplexShaped["angles"]) -> FloatShaped["angles"]:
    """Scaled magnitude, matching the declared real dtype."""
    return np.abs(field) * 2.0
