"""Suppression fixture: per-line disable comments."""
import numpy as np


def draw() -> float:
    rng = np.random.default_rng()  # vablint: disable=VAB001
    return float(rng.random())


def legacy() -> float:
    return float(np.random.random())  # vablint: disable=all
