"""Deliberate VAB022 violations: host configuration leaking into results."""

import os


def chunk_hint(total: int) -> int:
    workers = os.cpu_count() or 1
    return max(1, total // workers)


def run_label(base: str) -> str:
    suffix = os.environ.get("VAB_SUFFIX", "")
    return base + suffix
