"""VAB005 clean twin: annotated public API, no mutable defaults."""
from typing import Dict, List, Optional


def accumulate(values: Optional[List[int]] = None) -> List[int]:
    out = list(values or [])
    out.append(1)
    return out


class Tracker:
    def record(
        self, samples: Optional[Dict[str, float]] = None
    ) -> Dict[str, float]:
        return dict(samples or {})
