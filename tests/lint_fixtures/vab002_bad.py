"""VAB002 fixture: generator construction inside loop bodies."""
import numpy as np


def run_trials(seeds):
    values = []
    for seed in seeds:
        rng = np.random.default_rng(seed)
        values.append(rng.random())
    return values


def run_while(n):
    total = 0.0
    count = n
    while count > 0:
        gen = np.random.default_rng(count)
        total += gen.random()
        count -= 1
    return total
