"""VAB004 fixture: wall-clock reads in simulation code."""
import time
from datetime import datetime


def stamp():
    return time.time()


def today_string():
    return datetime.now().isoformat()
