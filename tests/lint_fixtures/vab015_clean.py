"""Clean twin: sets are sorted before they drive sums or RNG draws."""

from typing import List, Sequence

import numpy as np


def total_energy(levels: Sequence[float]) -> float:
    """Sum levels over a deterministic order."""
    pending = set(levels)
    total = 0.0
    for value in sorted(pending):
        total += value
    return total


def draw_offsets(rng: np.random.Generator, levels: Sequence[float]) -> List[float]:
    """Draw one offset per level, stream consumed in sorted order."""
    chosen = {float(value) for value in levels}
    out = []
    for value in sorted(chosen):
        out.append(value + rng.normal())
    return out
