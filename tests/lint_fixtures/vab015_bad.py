"""Deliberate VAB015 violations: set iteration feeding order-sensitive sinks."""

from typing import List, Sequence

import numpy as np


def total_energy(levels: Sequence[float]) -> float:
    """Sum levels -- wrongly, accumulating floats in set order."""
    pending = set(levels)
    total = 0.0
    for value in pending:
        total += value
    return total


def draw_offsets(rng: np.random.Generator, levels: Sequence[float]) -> List[float]:
    """Draw one offset per level -- wrongly, consuming the stream in set order."""
    chosen = {float(value) for value in levels}
    out = []
    for value in chosen:
        out.append(value + rng.normal())
    return out
