"""VAB001 fixture: unseeded and legacy global-state RNG calls."""
import numpy as np


def draw_bad():
    rng = np.random.default_rng()
    return rng.random()


def legacy_bad():
    np.random.seed(7)
    return np.random.normal(0.0, 1.0)
