"""Clean twin: margins on dB quantities are themselves dB."""


def snr_with_margin(snr_db: float) -> float:
    """Subtract the margin in the same (log) domain."""
    margin_db = 3.0
    return snr_db - margin_db
