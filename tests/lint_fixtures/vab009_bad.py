"""Deliberate VAB009 violations: metre/kilometre mix-ups."""


def absorption_loss_db(alpha_db_per_km: float, distance_m: float) -> float:
    """Path absorption -- wrongly, dB/km times metres with no / 1e3."""
    loss_db = alpha_db_per_km * distance_m
    return loss_db


def round_trip_m(range_m: float, detour_km: float) -> float:
    """Total path -- wrongly, adding kilometres onto metres."""
    return range_m + detour_km
