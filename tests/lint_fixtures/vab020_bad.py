"""Deliberate VAB020 violations: unpicklable callables crossing the pool."""

from concurrent.futures import ProcessPoolExecutor


def run_campaign(snrs: list, gain: float) -> list:
    def _scaled(snr_db: float) -> float:
        return snr_db * gain

    with ProcessPoolExecutor(max_workers=2) as pool:
        futures = [pool.submit(_scaled, snr) for snr in snrs]
        doubled = pool.map(lambda snr: snr * 2.0, snrs)
    return [f.result() for f in futures] + list(doubled)
