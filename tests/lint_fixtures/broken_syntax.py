"""Parse-error fixture: exercises the VAB000 / exit-2 path."""
def broken(:
    pass
