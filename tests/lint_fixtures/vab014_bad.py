"""Deliberate VAB014 violations: mutating arrays shared across a cache."""

from repro.sim.cache import reader_node_response


def doppler_scale(scenario: object, rx: object) -> object:
    """Scale a cached record -- wrongly, in place on the shared entry."""
    record = reader_node_response(scenario, rx)
    record *= 0.5
    return record


def ordered_record(scenario: object, rx: object) -> object:
    """Sort a cached record -- wrongly, mutating the shared entry."""
    record = reader_node_response(scenario, rx)
    record.sort()
    return record
