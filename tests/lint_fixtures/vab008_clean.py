"""Clean twin: convert to one angular convention before mixing."""

import math


def carrier_sample(frequency_hz: float, time_s: float) -> float:
    """Convert to angular phase (rad) before trigonometry."""
    phase_rad = 2.0 * math.pi * frequency_hz * time_s
    return math.sin(phase_rad)


def detune_hz(frequency_hz: float, omega_rad_per_s: float) -> float:
    """Bring rad/s back to Hz, then compare."""
    other_hz = omega_rad_per_s / (2.0 * math.pi)
    return frequency_hz - other_hz
