"""Deliberate VAB007 violation: additive mix of dB and linear power."""


def snr_with_margin(snr_db: float) -> float:
    """Apply a safety margin -- wrongly, a linear factor onto a dB value."""
    margin_linear = 10.0 ** (3.0 / 10.0)
    return snr_db - margin_linear
