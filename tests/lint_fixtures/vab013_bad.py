"""Deliberate VAB013 violations: complex values silently losing phase."""

import numpy as np

from repro.analysis.shapes.vocab import ComplexShaped, FloatShaped


def peak_level(field: ComplexShaped["angles"]) -> float:
    """Scalar level -- wrongly, float() drops the imaginary part."""
    return float(field[0])


def store_first(field: ComplexShaped["angles"]) -> np.ndarray:
    """Buffer the first sample -- wrongly, into a real-dtype buffer."""
    out = np.zeros(4)
    out[0] = field[0]
    return out


def positive_lobes(field: ComplexShaped["angles"]) -> np.ndarray:
    """Lobe mask -- wrongly, ordering complex values."""
    return field > 0.0


def scaled(field: ComplexShaped["angles"]) -> FloatShaped["angles"]:
    """Scaled field -- wrongly, returning complex where real is declared."""
    return field * 2.0
