"""Suppression fixture: a file-level disable comment."""
# vablint: disable-file=VAB001
import numpy as np


def draw() -> float:
    rng = np.random.default_rng()
    return float(rng.random())


def legacy() -> float:
    return float(np.random.random())
