"""Deliberate VAB010 violations: unit conflicts across call boundaries."""

import math


def spreading_term_db(distance_m: float) -> float:
    """Toy spreading loss (15 log10 d), dB re 1 m."""
    return 15.0 * math.log10(max(distance_m, 1.0))


def budget_at_db(range_km: float) -> float:
    """Evaluate the budget -- wrongly, handing kilometres to a metre API."""
    return spreading_term_db(range_km)


def detected_power_db(level_db: float) -> float:
    """Linear power -- wrongly exposed under a dB-suffixed name."""
    power_lin = 10.0 ** (level_db / 10.0)
    return power_lin
