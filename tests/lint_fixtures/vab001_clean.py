"""VAB001 clean twin: an explicit ``Generator`` threaded through."""
import numpy as np


def draw_clean(rng: np.random.Generator) -> float:
    return float(rng.random())
