"""Clean twin of vab018_bad: the memoized computation is pure and the
logging happens in the (uncached) caller, so cache hits change nothing."""

import functools

_CALLS = []


@functools.lru_cache(maxsize=None)
def response(key: str) -> str:
    return key.upper()


def logged_response(key: str) -> str:
    _CALLS.append(key)
    return response(key)
