"""Deliberate VAB011 violations: elementwise math that cannot broadcast."""

import numpy as np

from repro.analysis.shapes.vocab import FloatShaped


def centre(
    records: FloatShaped["trials", "samples"]
) -> FloatShaped["trials", "samples"]:
    """Remove the per-trial mean -- wrongly, without keepdims."""
    means = records.mean(axis=1)
    return records - means


def outer_gain(
    per_trial: FloatShaped["trials"], per_sample: FloatShaped["samples"]
) -> np.ndarray:
    """Combine per-axis gains -- wrongly, multiplying mismatched axes."""
    return per_trial * per_sample
