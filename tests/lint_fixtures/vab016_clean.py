"""Clean twin: calls and returns agree with the Shaped contracts."""

from repro.analysis.shapes.vocab import FloatShaped


def angle_profile(
    grid: FloatShaped["angles", "elements"]
) -> FloatShaped["angles"]:
    """Per-angle profile over the element axis."""
    return grid.sum(axis=1)


def best_angle(grid: FloatShaped["angles", "elements"]) -> float:
    """Score the full grid through the per-angle profile."""
    profile = angle_profile(grid)
    return float(profile.max(axis=0))
