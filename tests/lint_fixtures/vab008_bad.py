"""Deliberate VAB008 violations: Hz where radians are expected."""

import math


def carrier_sample(frequency_hz: float) -> float:
    """Sample the carrier -- wrongly, passing Hz straight into sin()."""
    return math.sin(frequency_hz)


def detune_hz(frequency_hz: float, omega_rad_per_s: float) -> float:
    """Offset between two frequencies -- wrongly, Hz minus rad/s."""
    return frequency_hz - omega_rad_per_s
