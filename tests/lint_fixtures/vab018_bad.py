"""Deliberate VAB018 violations: side effects escaping memoized code."""

import functools

_CALLS = []


@functools.lru_cache(maxsize=None)
def logged_response(key: str) -> str:
    _CALLS.append(key)
    return key.upper()


@functools.lru_cache(maxsize=None)
def recorded_response(key: str, log: tuple) -> str:
    log.append(key)
    fh = open("/tmp/vab018.log", "w")
    fh.write(key)
    fh.close()
    return key.upper()
