"""VAB002 clean twin: generators hoisted ahead of the loop.

The comprehension is the idiomatic hoist (cf. ``TrialCampaign``):
comprehensions are not per-trial hot-path loops, so constructing the
generators there is exactly the "derive all generators up front"
contract the rule enforces.
"""
from typing import List, Sequence

import numpy as np


def run_trials(seeds: Sequence[int]) -> List[float]:
    generators = [np.random.default_rng(seed) for seed in seeds]
    values = []
    for rng in generators:
        values.append(float(rng.random()))
    return values
