"""Deliberate VAB021 violation: a version constant missing from the
``engine_versions={...}`` manifest stamp."""

KERNEL_ENGINE_VERSION = 3
FASTPATH_ENGINE_VERSION = 7


def build_meta(engine_versions: dict) -> dict:
    return dict(engine_versions)


def write_manifest(record: dict) -> dict:
    record["meta"] = build_meta(
        engine_versions={"kernel": KERNEL_ENGINE_VERSION},
    )
    return record
