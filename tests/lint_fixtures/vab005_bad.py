"""VAB005 fixture: mutable defaults and missing annotations."""


def accumulate(values=[]):
    values.append(1)
    return values


def untyped(a, b):
    return a + b


class Tracker:
    def record(self, samples={}):
        return samples


def _private_mutable(extra=list()):
    return extra
