"""Clean twin of vab019_bad: every worker stream derives from the
campaign's SeedSequence spawn, threaded through the parameters."""

from concurrent.futures import ProcessPoolExecutor

import numpy as np


def _seeded_trial(snr_db: float, seed: object) -> float:
    rng = np.random.default_rng(seed)
    return snr_db + rng.normal()


def run_campaign(snrs: list, seed: int = 1234) -> list:
    children = np.random.SeedSequence(seed).spawn(len(snrs))
    with ProcessPoolExecutor(max_workers=2) as pool:
        futures = [
            pool.submit(_seeded_trial, snr, child)
            for snr, child in zip(snrs, children)
        ]
    return [f.result() for f in futures]
