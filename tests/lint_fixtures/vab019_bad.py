"""Deliberate VAB019 violations: ambient RNG crossing worker boundaries."""

from concurrent.futures import ProcessPoolExecutor

import numpy as np


def _noisy_trial(snr_db: float) -> float:
    noise = np.random.normal(0.0, 1.0)
    return snr_db + noise


def _unseeded_trial(snr_db: float) -> float:
    rng = np.random.default_rng()
    return snr_db + rng.normal()


def run_campaign(snrs: list) -> list:
    with ProcessPoolExecutor(max_workers=2) as pool:
        futures = [pool.submit(_noisy_trial, snr) for snr in snrs]
        extra = pool.map(_unseeded_trial, snrs)
    return [f.result() for f in futures] + list(extra)
