"""Deliberate VAB016 violations: code contradicting its Shaped contracts."""

from repro.analysis.shapes.vocab import FloatShaped


def angle_profile(
    grid: FloatShaped["angles", "elements"]
) -> FloatShaped["angles"]:
    """Per-angle profile -- wrongly, reducing the angle axis instead."""
    return grid.sum(axis=0)


def best_angle(weights: FloatShaped["elements"]) -> float:
    """Score a weight vector -- wrongly, passing it as the 2-D grid."""
    profile = angle_profile(weights)
    return float(profile.max(axis=0))
