"""Clean twin: cache entries are copied before any write."""

from repro.sim.cache import reader_node_response


def doppler_scale(scenario: object, rx: object) -> object:
    """Scale a private copy of the cached record."""
    record = reader_node_response(scenario, rx).copy()
    record *= 0.5
    return record


def ordered_record(scenario: object, rx: object) -> object:
    """Sort a private copy of the cached record."""
    record = reader_node_response(scenario, rx).copy()
    record.sort()
    return record
