"""Bare ``# vablint: disable`` (no rule list) silences every rule."""

import time


def stamp() -> float:
    """Wall-clock read, deliberate and suppressed without a rule list."""
    return time.time()  # vablint: disable
