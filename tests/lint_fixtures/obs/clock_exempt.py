"""VAB004 exemption: files under an ``obs`` directory may read the clock."""
import time


def stamp() -> float:
    return time.time()
