"""VAB003 clean twin: unit-disciplined arithmetic."""
import math


def to_db(power_lin: float) -> float:
    power_db = 10.0 * math.log10(power_lin)
    return power_db


def to_linear(level_db: float) -> float:
    return 10.0 ** (level_db / 10.0)


def budget(loss_db: float, gain_db: float) -> float:
    return loss_db + gain_db
