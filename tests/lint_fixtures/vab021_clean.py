"""Clean twin of vab021_bad: every version constant reaches the stamp,
so results from different engine versions never share a run_key."""

KERNEL_ENGINE_VERSION = 3
FASTPATH_ENGINE_VERSION = 7


def build_meta(engine_versions: dict) -> dict:
    return dict(engine_versions)


def write_manifest(record: dict) -> dict:
    record["meta"] = build_meta(
        engine_versions={
            "kernel": KERNEL_ENGINE_VERSION,
            "fastpath": FASTPATH_ENGINE_VERSION,
        },
    )
    return record
