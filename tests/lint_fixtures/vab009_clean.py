"""Clean twin: one length convention per expression."""


def absorption_loss_db(alpha_db_per_km: float, distance_m: float) -> float:
    """Convert metres to kilometres before applying a dB/km coefficient."""
    loss_db = alpha_db_per_km * distance_m / 1e3
    return loss_db


def round_trip_m(range_m: float, detour_km: float) -> float:
    """Convert the detour to metres first, then stay in metres."""
    detour_m = detour_km * 1e3
    return range_m + detour_m
