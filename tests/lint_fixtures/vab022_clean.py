"""Clean twin of vab022_bad: the host read carries a declared
``reads:host`` grant (it only tunes scheduling) and result-shaping
values arrive as arguments."""

import os

from repro.analysis.effects.vocab import Effectful


def default_workers() -> Effectful[int, "reads:host"]:
    return max(1, os.cpu_count() or 1)


def chunk_hint(total: int, workers: int) -> int:
    return max(1, total // workers)


def run_label(base: str, suffix: str) -> str:
    return base + suffix
