"""Clean twin: reductions name their axis (or collapse explicitly)."""

from repro.analysis.shapes.vocab import FloatShaped


def mean_power(power: FloatShaped["trials", "samples"]) -> float:
    """Average power with the full collapse made explicit."""
    return float(power.mean(axis=None))


def per_trial_power(
    power: FloatShaped["trials", "samples"]
) -> FloatShaped["trials"]:
    """Per-trial power over the sample axis."""
    return power.sum(axis=1)
