"""VAB003 fixture: unit-suffix arithmetic and naming mismatches."""
import math


def double_conversion(snr_db):
    return 10.0 * math.log10(snr_db)


def unmarked_binding(power):
    level = 10.0 * math.log10(power)
    return level


def unmarked_linearise(gain):
    return 10.0 ** (gain / 10.0)


def mixed_addition(loss_db, gain_lin):
    return loss_db + gain_lin
