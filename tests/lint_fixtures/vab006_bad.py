"""Deliberate VAB006 violations: products of dB-domain quantities."""


def total_gain_db(array_gain_db: float, processing_gain_db: float) -> float:
    """Combine two gains -- wrongly, by multiplying their dB values."""
    combined_db = array_gain_db * processing_gain_db
    return combined_db


def loss_ratio(tx_loss_db: float, rx_loss_db: float) -> float:
    """Ratio of two losses -- wrongly, dividing dB by dB."""
    return tx_loss_db / rx_loss_db
