"""VAB004 clean twin: timestamps routed through the telemetry layer."""
from repro.obs.manifest import wall_clock_unix


def stamp() -> float:
    return wall_clock_unix()
