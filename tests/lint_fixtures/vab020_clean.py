"""Clean twin of vab020_bad: module-level functions pickle; captured
state travels as explicit arguments."""

from concurrent.futures import ProcessPoolExecutor


def _scaled(snr_db: float, gain: float) -> float:
    return snr_db * gain


def run_campaign(snrs: list, gain: float) -> list:
    with ProcessPoolExecutor(max_workers=2) as pool:
        futures = [pool.submit(_scaled, snr, gain) for snr in snrs]
    return [f.result() for f in futures]
