"""Clean twin: units agree at call sites and return boundaries."""

import math


def spreading_term_db(distance_m: float) -> float:
    """Toy spreading loss (15 log10 d), dB re 1 m."""
    return 15.0 * math.log10(max(distance_m, 1.0))


def budget_at_db(range_km: float) -> float:
    """Convert to metres before calling the metre-typed API."""
    return spreading_term_db(range_km * 1e3)


def detected_power(level_db: float) -> float:
    """Linear power, named accordingly."""
    return 10.0 ** (level_db / 10.0)
