"""Tests for preamble detection and framing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dsp.noisegen import white_noise
from repro.phy.coding import LineCode
from repro.phy.frame import (
    MAX_PAYLOAD_BYTES,
    FrameConfig,
    build_frame,
    parse_frame,
)
from repro.phy.preamble import (
    BARKER13,
    detect_preamble,
    preamble_chips,
    preamble_template,
)


def chips_to_signal(chips, sps, amplitude=1.0, phase=0.0):
    """OOK waveform (zero-mean) for a chip stream, as the receiver sees it."""
    levels = (np.asarray(chips, float) - 0.5) * amplitude
    wave = np.repeat(levels, sps).astype(complex)
    return wave * np.exp(1j * phase)


class TestPreamble:
    def test_barker13_autocorrelation_sidelobes(self):
        levels = 2.0 * BARKER13 - 1.0
        full = np.correlate(levels, levels, mode="full")
        peak = full[len(levels) - 1]
        sidelobes = np.abs(np.delete(full, len(levels) - 1))
        assert peak == 13.0
        assert sidelobes.max() <= 1.0  # the Barker property

    def test_preamble_repeats(self):
        assert len(preamble_chips(2)) == 26
        with pytest.raises(ValueError):
            preamble_chips(0)

    def test_template_zero_mean(self):
        t = preamble_template(8, repeats=2)
        assert abs(t.mean()) < 0.05

    def test_detects_clean_preamble(self):
        sps = 8
        chips = np.concatenate([np.zeros(17, int), preamble_chips(2), np.zeros(9, int)])
        sig = chips_to_signal(chips, sps)
        det = detect_preamble(sig, sps)
        assert det is not None
        assert det.start_index == 17 * sps
        assert det.score > 0.9

    def test_detects_with_phase_rotation(self):
        sps = 8
        chips = np.concatenate([np.zeros(10, int), preamble_chips(2)])
        sig = chips_to_signal(chips, sps, phase=1.1)
        det = detect_preamble(sig, sps)
        assert det is not None
        assert det.start_index == 10 * sps
        # The reported phase should match the injected rotation.
        assert np.angle(det.phase) == pytest.approx(1.1, abs=0.05)

    def test_detects_in_noise(self):
        sps = 8
        rng = np.random.default_rng(7)
        chips = np.concatenate([np.zeros(20, int), preamble_chips(2), np.zeros(20, int)])
        sig = chips_to_signal(chips, sps)
        sig = sig + white_noise(len(sig), 0.05, rng)
        det = detect_preamble(sig, sps, threshold=0.4)
        assert det is not None
        assert abs(det.start_index - 20 * sps) <= 1

    def test_rejects_pure_noise(self):
        rng = np.random.default_rng(8)
        sig = white_noise(2000, 1.0, rng)
        assert detect_preamble(sig, 8, threshold=0.6) is None

    def test_rejects_too_short_record(self):
        assert detect_preamble(np.zeros(10, complex), 8) is None


class TestFrame:
    def test_build_and_parse_roundtrip(self):
        chips = build_frame(42, b"sensor-7 reading")
        cfg = FrameConfig()
        frame = parse_frame(chips[len(cfg.preamble):], cfg)
        assert frame is not None
        assert frame.node_id == 42
        assert frame.payload == b"sensor-7 reading"
        assert frame.crc_ok
        assert frame.fm0_violations == 0

    def test_roundtrip_all_line_codes(self):
        for code in LineCode:
            cfg = FrameConfig(line_code=code)
            chips = build_frame(7, b"abc", cfg)
            frame = parse_frame(chips[len(cfg.preamble):], cfg)
            assert frame is not None and frame.crc_ok
            assert frame.payload == b"abc"

    def test_empty_payload(self):
        cfg = FrameConfig()
        chips = build_frame(1, b"", cfg)
        frame = parse_frame(chips[len(cfg.preamble):], cfg)
        assert frame.payload == b""
        assert frame.crc_ok

    def test_trailing_chips_ignored(self):
        cfg = FrameConfig()
        chips = build_frame(9, b"xy", cfg)
        extended = np.concatenate([chips[len(cfg.preamble):], np.zeros(40, np.int64)])
        frame = parse_frame(extended, cfg)
        assert frame.payload == b"xy"
        assert frame.crc_ok

    def test_corruption_fails_crc(self):
        cfg = FrameConfig()
        chips = build_frame(9, b"hello", cfg).copy()
        body = chips[len(cfg.preamble):]
        body[37] ^= 1
        frame = parse_frame(body, cfg)
        assert frame is not None
        assert not frame.crc_ok

    def test_truncated_stream_returns_none(self):
        cfg = FrameConfig()
        chips = build_frame(9, b"hello world", cfg)
        body = chips[len(cfg.preamble):]
        assert parse_frame(body[: len(body) // 2], cfg) is None
        assert parse_frame(body[:8], cfg) is None

    def test_payload_size_limit(self):
        build_frame(1, bytes(MAX_PAYLOAD_BYTES))
        with pytest.raises(ValueError):
            build_frame(1, bytes(MAX_PAYLOAD_BYTES + 1))

    def test_node_id_range(self):
        with pytest.raises(ValueError):
            build_frame(256, b"")
        with pytest.raises(ValueError):
            build_frame(-1, b"")

    def test_frame_chips_accounting(self):
        cfg = FrameConfig()
        payload = b"12345"
        chips = build_frame(3, payload, cfg)
        assert len(chips) == cfg.frame_chips(len(payload))

    @given(
        st.integers(min_value=0, max_value=255),
        st.binary(min_size=0, max_size=40),
    )
    @settings(max_examples=30)
    def test_roundtrip_property(self, node_id, payload):
        cfg = FrameConfig()
        chips = build_frame(node_id, payload, cfg)
        frame = parse_frame(chips[len(cfg.preamble):], cfg)
        assert frame.node_id == node_id
        assert frame.payload == payload
        assert frame.crc_ok
