"""Tests for sound-speed profiles and ray tracing."""

import math

import numpy as np
import pytest

from repro.acoustics.raytrace import (
    RayPath,
    find_eigenray,
    in_shadow_zone,
    trace_ray,
)
from repro.acoustics.ssp import SoundSpeedProfile


class TestSSP:
    def test_isothermal_flat(self):
        ssp = SoundSpeedProfile.isothermal(1480.0)
        assert ssp.speed_at(0.0) == 1480.0
        assert ssp.speed_at(50.0) == 1480.0
        assert ssp.gradient_at(25.0) == 0.0

    def test_linear_gradient(self):
        ssp = SoundSpeedProfile.linear(1480.0, 0.1, max_depth_m=100.0)
        assert ssp.speed_at(50.0) == pytest.approx(1485.0)
        assert ssp.gradient_at(50.0) == pytest.approx(0.1)

    def test_clamping_beyond_knots(self):
        ssp = SoundSpeedProfile.linear(1480.0, 0.1, max_depth_m=100.0)
        assert ssp.speed_at(200.0) == pytest.approx(1490.0)
        assert ssp.gradient_at(200.0) == 0.0

    def test_summer_thermocline_shape(self):
        ssp = SoundSpeedProfile.summer_thermocline()
        # Warm surface is faster than cold deep water.
        assert ssp.speed_at(2.0) > ssp.speed_at(40.0)
        # The sharpest (negative) gradient sits inside the thermocline.
        grad_inside = ssp.gradient_at(14.0)
        grad_mixed = ssp.gradient_at(4.0)
        assert grad_inside < grad_mixed
        assert grad_inside < -0.5

    def test_minimum_speed_depth(self):
        ssp = SoundSpeedProfile.summer_thermocline(max_depth_m=60.0)
        # Downward-refracting profile: minimum at depth.
        assert ssp.minimum_speed_depth() > 15.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SoundSpeedProfile(np.array([0.0, 1.0]), np.array([1500.0]))
        with pytest.raises(ValueError):
            SoundSpeedProfile(np.array([5.0, 1.0]), np.array([1500.0, 1500.0]))
        with pytest.raises(ValueError):
            SoundSpeedProfile(np.array([0.0, 1.0]), np.array([1500.0, -1.0]))
        with pytest.raises(ValueError):
            SoundSpeedProfile.summer_thermocline(thermocline_top_m=30.0,
                                                 thermocline_bottom_m=20.0)


class TestTraceRay:
    def test_straight_in_isothermal(self):
        ssp = SoundSpeedProfile.isothermal(1480.0, max_depth_m=200.0)
        ray = trace_ray(ssp, 50.0, 0.0, 500.0, bottom_depth_m=200.0)
        np.testing.assert_allclose(ray.z_m, 50.0, atol=1e-6)
        assert ray.surface_hits == 0 and ray.bottom_hits == 0

    def test_descending_launch_descends(self):
        ssp = SoundSpeedProfile.isothermal(1480.0, max_depth_m=500.0)
        ray = trace_ray(ssp, 10.0, 5.0, 300.0, bottom_depth_m=500.0)
        assert ray.z_m[-1] > 10.0

    def test_travel_time_matches_isothermal(self):
        ssp = SoundSpeedProfile.isothermal(1500.0, max_depth_m=100.0)
        ray = trace_ray(ssp, 50.0, 0.0, 1500.0, bottom_depth_m=100.0)
        assert ray.travel_time_s == pytest.approx(1.0, rel=0.01)

    def test_surface_reflection(self):
        ssp = SoundSpeedProfile.isothermal(1480.0, max_depth_m=100.0)
        ray = trace_ray(ssp, 5.0, -10.0, 300.0, bottom_depth_m=100.0)
        assert ray.surface_hits >= 1
        assert np.all(ray.z_m >= -1e-9)

    def test_bottom_reflection(self):
        ssp = SoundSpeedProfile.isothermal(1480.0, max_depth_m=30.0)
        ray = trace_ray(ssp, 25.0, 10.0, 300.0, bottom_depth_m=30.0)
        assert ray.bottom_hits >= 1
        assert np.all(ray.z_m <= 30.0 + 1e-9)

    def test_snell_invariant_in_gradient(self):
        """cos(theta)/c must be conserved along a refracting ray."""
        ssp = SoundSpeedProfile.linear(1480.0, 0.5, max_depth_m=200.0)
        ray = trace_ray(ssp, 100.0, 8.0, 400.0, bottom_depth_m=200.0,
                        step_m=0.25)
        # Reconstruct angles from consecutive points.
        dx = np.diff(ray.x_m)
        dz = np.diff(ray.z_m)
        theta = np.arctan2(dz, dx)
        c = np.array([ssp.speed_at(z) for z in ray.z_m[:-1]])
        invariant = np.cos(theta) / c
        assert np.std(invariant) / np.mean(invariant) < 1e-3

    def test_downward_refraction_bends_down(self):
        """Negative gradient (summer): a horizontal ray curves downward."""
        ssp = SoundSpeedProfile.summer_thermocline()
        ray = trace_ray(ssp, 10.0, 0.0, 400.0, bottom_depth_m=60.0)
        assert ray.depth_at(300.0) > 12.0

    def test_validation(self):
        ssp = SoundSpeedProfile.isothermal()
        with pytest.raises(ValueError):
            trace_ray(ssp, 10.0, 95.0, 100.0)
        with pytest.raises(ValueError):
            trace_ray(ssp, -5.0, 0.0, 100.0)
        with pytest.raises(ValueError):
            trace_ray(ssp, 10.0, 0.0, 100.0, step_m=0.0)

    def test_depth_at_outside_returns_none(self):
        ssp = SoundSpeedProfile.isothermal()
        ray = trace_ray(ssp, 10.0, 0.0, 100.0)
        assert ray.depth_at(1e9) is None


class TestEigenraysAndShadow:
    def test_isothermal_always_connects(self):
        ssp = SoundSpeedProfile.isothermal(1480.0, max_depth_m=100.0)
        ray = find_eigenray(ssp, 10.0, 40.0, 300.0, bottom_depth_m=100.0)
        assert ray is not None
        assert ray.depth_at(300.0) == pytest.approx(40.0, abs=2.0)

    def test_same_depth_connects_trivially(self):
        ssp = SoundSpeedProfile.isothermal(1480.0, max_depth_m=100.0)
        assert not in_shadow_zone(ssp, 20.0, 20.0, 400.0, bottom_depth_m=100.0)

    def test_thermocline_creates_shadow_at_range(self):
        """The deployment lesson: under a summer thermocline, downward
        refraction drives both the direct and the surface-reflected rays
        into the bottom, opening a shadow zone beyond ~1.4 km that no
        node depth escapes — while the same geometry is fully reachable
        in well-mixed winter water."""
        summer = SoundSpeedProfile.summer_thermocline(max_depth_m=200.0)
        winter = SoundSpeedProfile.isothermal(1480.0, max_depth_m=200.0)
        # Close in: everyone reachable in both seasons.
        for depth in (6.0, 60.0, 150.0):
            assert not in_shadow_zone(summer, 3.0, depth, 400.0,
                                      bottom_depth_m=200.0)
        # Far out in summer: dark at every node depth.
        for depth in (6.0, 60.0, 150.0):
            assert in_shadow_zone(summer, 3.0, depth, 1600.0,
                                  bottom_depth_m=200.0)
            # The identical geometry is reachable in winter.
            assert not in_shadow_zone(winter, 3.0, depth, 1600.0,
                                      bottom_depth_m=200.0)
