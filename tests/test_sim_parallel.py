"""Parallel campaign engine: determinism, caching, and the perf smoke.

The contract under test is strong: the process-pool runner must be
*bit-identical* to the serial loop — same seeds, same float reduction
order — and the memoization layers must be pure speed, invisible in the
numbers they return.
"""

import importlib.util
from pathlib import Path

import numpy as np
import pytest

from repro.acoustics.noise import NoiseConditions, total_noise_psd_db
from repro.core import Scenario
from repro.dsp import noisegen
from repro.obs import MetricsRegistry, SpanTracer
from repro.sim import cache
from repro.sim.parallel import run_campaign_parallel, split_evenly
from repro.sim.profiling import StageTimings
from repro.sim.results import BERPoint
from repro.sim.sweep import sweep_range
from repro.sim.trials import TrialCampaign, run_campaign
from repro.vanatta.node import VanAttaNode

ROOT = Path(__file__).resolve().parent.parent

RANGES = [50.0, 330.0]


class TestSplitEvenly:
    def test_covers_range_contiguously(self):
        for n in (1, 2, 7, 25, 100):
            for parts in (1, 2, 3, 4, 9, n, n + 5):
                chunks = split_evenly(n, parts)
                assert chunks[0][0] == 0
                assert chunks[-1][1] == n
                for (_, stop), (start, _) in zip(chunks, chunks[1:]):
                    assert stop == start

    def test_sizes_differ_by_at_most_one_larger_first(self):
        chunks = split_evenly(25, 4)
        sizes = [stop - start for start, stop in chunks]
        assert sizes == [7, 6, 6, 6]

    def test_never_emits_empty_chunks(self):
        assert split_evenly(2, 8) == [(0, 1), (1, 2)]
        assert split_evenly(0, 4) == []


class TestParallelDeterminism:
    def test_parallel_bit_identical_to_serial(self):
        scenarios = sweep_range(Scenario.river(), RANGES)
        campaign = TrialCampaign(trials_per_point=8, seed=2023)
        serial = run_campaign(scenarios, campaign, label="det")
        parallel = run_campaign_parallel(
            scenarios, campaign, label="det", workers=4
        )
        # Not "close" — identical. Same spawned seeds, same trial order,
        # same reduction order in BERPoint.from_trials.
        assert parallel.points == serial.points

    def test_workers_one_matches_serial_runner(self):
        scenarios = sweep_range(Scenario.river(), RANGES)
        campaign = TrialCampaign(trials_per_point=4, seed=7)
        serial = run_campaign(scenarios, campaign)
        inproc = run_campaign_parallel(scenarios, campaign, workers=1)
        assert inproc.points == serial.points

    def test_non_picklable_campaign_falls_back_to_serial(self):
        scenarios = sweep_range(Scenario.river(), [50.0])
        campaign = TrialCampaign(
            trials_per_point=3, seed=5, node_factory=lambda: VanAttaNode()
        )
        serial = run_campaign(scenarios, campaign)
        fallback = run_campaign_parallel(scenarios, campaign, workers=4)
        assert fallback.points == serial.points

    def test_sliced_trials_reassemble_to_the_full_point(self):
        scenario = Scenario.river().at_range(150.0)
        campaign = TrialCampaign(trials_per_point=6, seed=11)
        whole = campaign.run_point(scenario, point_index=0)
        parts = campaign.run_trials(scenario, 0, 0, 2) + campaign.run_trials(
            scenario, 0, 2, None
        )
        assert BERPoint.from_trials(parts) == whole

    def test_stage_timings_cover_the_engine_stages(self):
        scenarios = sweep_range(Scenario.river(), [50.0])
        timings = StageTimings()
        run_campaign_parallel(
            scenarios, TrialCampaign(trials_per_point=2, seed=1),
            workers=1, timings=timings,
        )
        report = timings.as_dict()
        # Batched engine: stages run once per point batch, not per trial.
        for stage in ("batch", "channel", "reflect", "noise", "demod"):
            assert report[stage]["count"] >= 1
            assert report[stage]["total_s"] >= 0.0

    def test_telemetry_does_not_perturb_results(self):
        scenarios = sweep_range(Scenario.river(), RANGES)
        campaign = TrialCampaign(trials_per_point=6, seed=2023)
        bare = run_campaign(scenarios, campaign, label="obs")
        tracer = SpanTracer()
        metrics = MetricsRegistry()
        timings = StageTimings()
        observed = run_campaign_parallel(
            scenarios, campaign, label="obs", workers=4,
            tracer=tracer, metrics=metrics, timings=timings,
        )
        # Full telemetry on, fanned out over 4 workers: still identical.
        assert observed.points == bare.points

    def test_worker_merged_spans_match_serial_counts(self):
        scenarios = sweep_range(Scenario.river(), RANGES)
        campaign = TrialCampaign(trials_per_point=6, seed=17)
        serial_tracer = SpanTracer()
        run_campaign_parallel(
            scenarios, campaign, workers=1, tracer=serial_tracer
        )
        parallel_tracer = SpanTracer()
        run_campaign_parallel(
            scenarios, campaign, workers=4, tracer=parallel_tracer
        )
        # Wall-clocks differ across processes, but the counts — how many
        # times each stage ran — must agree leaf-for-leaf. (The serial
        # path has a `point` root span the point-shard workers don't;
        # every shared stage below it must match exactly.)
        _, serial_counts = serial_tracer.leaf_totals()
        _, parallel_counts = parallel_tracer.leaf_totals()
        for stage in ("batch", "channel", "reflect", "noise", "demod"):
            assert parallel_counts[stage] == serial_counts[stage]
        # Batched engine: one batch span per point, stages per batch.
        assert serial_counts["batch"] == 2
        assert serial_counts["demod"] == 2

    def test_per_trial_engine_still_emits_trial_spans(self):
        scenarios = sweep_range(Scenario.river(), RANGES)
        campaign = TrialCampaign(
            trials_per_point=6, seed=17, engine="per-trial"
        )
        tracer = SpanTracer()
        run_campaign_parallel(scenarios, campaign, workers=1, tracer=tracer)
        _, counts = tracer.leaf_totals()
        assert counts["trial"] == 2 * 6
        assert "batch" not in counts

    def test_parallel_metrics_match_serial_totals(self):
        cache.clear_channel_cache()
        scenarios = sweep_range(Scenario.river(), RANGES)
        campaign = TrialCampaign(trials_per_point=4, seed=3)
        serial_metrics = MetricsRegistry()
        run_campaign_parallel(
            scenarios, campaign, workers=1, metrics=serial_metrics
        )
        parallel_metrics = MetricsRegistry()
        run_campaign_parallel(
            scenarios, campaign, workers=2, metrics=parallel_metrics
        )
        name = "repro.phy.receiver.demods"
        assert serial_metrics.counters[name] >= 8
        assert parallel_metrics.counters[name] == serial_metrics.counters[name]
        assert parallel_metrics.counters["repro.sim.parallel.chunks"] >= 2
        assert parallel_metrics.gauges["repro.sim.parallel.workers"] == 2


class TestChannelCache:
    def test_cached_taps_equal_fresh_computation(self):
        scenario = Scenario.river().at_range(250.0)
        cache.clear_channel_cache()
        cached = cache.reader_node_response(scenario)
        fresh = scenario.channel().between(
            scenario.reader.position, scenario.node.position
        )
        assert len(cached.paths) == len(fresh.paths)
        for a, b in zip(cached.paths, fresh.paths):
            assert a.delay_s == b.delay_s
            assert a.gain == b.gain
            assert a.surface_bounces == b.surface_bounces

    def test_second_lookup_is_a_hit_returning_the_same_object(self):
        scenario = Scenario.river().at_range(250.0)
        cache.clear_channel_cache()
        first = cache.reader_node_response(scenario)
        hits0, misses0, entries0, _ = cache.channel_cache_info()
        # An equal-by-value but distinct scenario object shares the entry.
        again = cache.reader_node_response(Scenario.river().at_range(250.0))
        hits1, misses1, entries1, _ = cache.channel_cache_info()
        assert again is first
        assert (hits1, misses1, entries1) == (hits0 + 1, misses0, entries0)

    def test_clear_invalidates(self):
        scenario = Scenario.river().at_range(120.0)
        cache.clear_channel_cache()
        first = cache.reader_node_response(scenario)
        cache.clear_channel_cache()
        assert cache.channel_cache_info()[:3] == (0, 0, 0)
        retraced = cache.reader_node_response(scenario)
        assert retraced is not first

    def test_disabled_cache_bypasses_storage(self):
        scenario = Scenario.river().at_range(90.0)
        cache.clear_channel_cache()
        old = cache.set_channel_cache_enabled(False)
        try:
            cache.reader_node_response(scenario)
            assert cache.channel_cache_info()[:3] == (0, 0, 0)
        finally:
            cache.set_channel_cache_enabled(old)


class TestNoiseShapingCache:
    def test_vectorized_psd_matches_scalar_wenz(self):
        conditions = NoiseConditions()
        freqs = np.linspace(100.0, 40_000.0, 257)
        vectorized = conditions.psd_db_array(freqs)
        pointwise = np.array([total_noise_psd_db(f, conditions) for f in freqs])
        np.testing.assert_allclose(vectorized, pointwise, rtol=1e-12)

    def test_cached_noise_bitwise_matches_pointwise_path(self):
        conditions = NoiseConditions()
        n, fs, carrier = 4096, 192_000.0, 18_500.0
        noisegen.clear_noise_cache()
        cached = noisegen.colored_noise(
            n, fs, conditions.psd_db, carrier, np.random.default_rng(3)
        )
        old = noisegen.set_pointwise_psd(True)
        old_cache = noisegen.set_noise_cache_enabled(False)
        try:
            pointwise = noisegen.colored_noise(
                n, fs, conditions.psd_db, carrier, np.random.default_rng(3)
            )
        finally:
            noisegen.set_pointwise_psd(old)
            noisegen.set_noise_cache_enabled(old_cache)
        np.testing.assert_allclose(cached, pointwise, rtol=1e-10)

    def test_shaping_filter_is_reused_across_equal_conditions(self):
        noisegen.clear_noise_cache()
        rng = np.random.default_rng(0)
        noisegen.colored_noise(2048, 192_000.0, NoiseConditions().psd_db, 18_500.0, rng)
        entries_after_first, _ = noisegen.noise_cache_info()
        noisegen.colored_noise(2048, 192_000.0, NoiseConditions().psd_db, 18_500.0, rng)
        entries_after_second, _ = noisegen.noise_cache_info()
        assert entries_after_first == entries_after_second == 1


@pytest.mark.bench_smoke
class TestBenchSmoke:
    def load_bench(self):
        spec = importlib.util.spec_from_file_location(
            "bench_perf", ROOT / "tools" / "bench_perf.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_tiny_campaign_runs_and_reports_timings(self):
        bench = self.load_bench()
        record = bench.run_bench(
            trials_per_point=2, ranges_m=[50.0], workers=2, seed=2023,
            arrayfactor_elements=16, arrayfactor_angles=9,
        )
        assert record["bench"] == "BENCH_1"
        assert record["parallel_bit_identical"] is True
        assert record["batched_bit_identical"] is True
        assert record["batched_engine_version"] >= 1
        assert record["fastfield_engine_version"] >= 1
        for arm in (
            "seed_baseline",
            "serial_fallback",
            "optimized_serial",
            "optimized_parallel",
        ):
            assert record[arm]["trials"] == 2
            assert record[arm]["trials_per_sec"] > 0
        assert record["optimized_parallel"]["workers"] == 2
        assert record["arrayfactor_parity"] is True
        for arm in ("arrayfactor", "arrayfactor_loop"):
            assert record[arm]["elements"] == 16
            assert record[arm]["angles"] == 9
            assert record[arm]["trials_per_sec"] > 0
        assert set(record["speedup"]) == {
            "serial_over_baseline",
            "parallel_over_baseline",
            "batched_over_fallback",
            "arrayfactor_over_loop",
        }
        for stage in ("batch", "channel", "reflect", "noise", "demod"):
            assert record["stage_timings"][stage]["count"] >= 1

    def test_lint_warm_arm_times_a_fully_warm_three_engine_run(self):
        bench = self.load_bench()
        target = ROOT / "src" / "repro" / "analysis" / "effects"
        arm = bench.run_lint_warm_bench(target=target, repeats=2)
        assert arm["files"] >= 4
        assert arm["repeats"] == 2
        assert arm["trials"] == arm["files"] * 2
        assert arm["trials_per_sec"] > 0
        # Every file must be served by every engine from the warm cache.
        assert arm["cache_hits_per_run"] == 3 * arm["files"]
