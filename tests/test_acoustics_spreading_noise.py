"""Tests for spreading loss and Wenz ambient noise."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.acoustics.constants import WaterProperties
from repro.acoustics.noise import (
    NoiseConditions,
    noise_level_db,
    total_noise_psd_db,
    wenz_shipping_psd_db,
    wenz_thermal_psd_db,
    wenz_turbulence_psd_db,
    wenz_wind_psd_db,
)
from repro.acoustics.spreading import (
    CYLINDRICAL_EXPONENT,
    SPHERICAL_EXPONENT,
    amplitude_gain,
    spreading_loss_db,
    transmission_loss_db,
)


class TestSpreading:
    def test_spherical_20db_per_decade(self):
        assert spreading_loss_db(10.0, SPHERICAL_EXPONENT) == pytest.approx(20.0)
        assert spreading_loss_db(100.0, SPHERICAL_EXPONENT) == pytest.approx(40.0)

    def test_cylindrical_half_of_spherical(self):
        d = 250.0
        assert spreading_loss_db(d, CYLINDRICAL_EXPONENT) == pytest.approx(
            spreading_loss_db(d, SPHERICAL_EXPONENT) / 2.0
        )

    def test_zero_at_reference(self):
        assert spreading_loss_db(1.0) == 0.0

    def test_inside_reference_rejected(self):
        with pytest.raises(ValueError):
            spreading_loss_db(0.5)

    def test_tl_includes_absorption(self):
        f = 18_500.0
        water = WaterProperties.ocean()
        tl_short = transmission_loss_db(100.0, f, water)
        tl_long = transmission_loss_db(1000.0, f, water)
        spreading_only = spreading_loss_db(1000.0) - spreading_loss_db(100.0)
        # The 900 m delta must exceed pure spreading (absorption adds).
        assert tl_long - tl_short > spreading_only

    def test_amplitude_gain_inverts_tl(self):
        g = amplitude_gain(100.0, 18_500.0)
        tl = transmission_loss_db(100.0, 18_500.0)
        assert -20.0 * math.log10(g) == pytest.approx(tl)

    @given(st.floats(min_value=1.0, max_value=10_000.0))
    def test_tl_monotonic(self, d):
        f = 18_500.0
        assert transmission_loss_db(d + 1.0, f) > transmission_loss_db(d, f)


class TestWenz:
    def test_wind_increases_noise(self):
        f = 18_500.0
        quiet = wenz_wind_psd_db(f, 1.0)
        windy = wenz_wind_psd_db(f, 12.0)
        assert windy > quiet + 5.0

    def test_shipping_bounded_factor(self):
        with pytest.raises(ValueError):
            wenz_shipping_psd_db(1000.0, 1.5)

    def test_thermal_rises_with_frequency(self):
        assert wenz_thermal_psd_db(100e3) > wenz_thermal_psd_db(10e3)

    def test_turbulence_falls_with_frequency(self):
        assert wenz_turbulence_psd_db(100.0) > wenz_turbulence_psd_db(1000.0)

    def test_total_dominated_by_wind_at_vab_band(self):
        cond = NoiseConditions(wind_speed_mps=8.0, shipping=0.5)
        f = 18_500.0
        total = total_noise_psd_db(f, cond)
        wind = wenz_wind_psd_db(f, 8.0)
        assert total == pytest.approx(wind, abs=3.0)

    def test_total_exceeds_every_component(self):
        cond = NoiseConditions(wind_speed_mps=5.0, shipping=0.5)
        f = 18_500.0
        total = total_noise_psd_db(f, cond)
        assert total >= wenz_wind_psd_db(f, 5.0)
        assert total >= wenz_shipping_psd_db(f, 0.5)
        assert total >= wenz_thermal_psd_db(f)

    def test_sea_state_presets_ordered(self):
        f = 18_500.0
        levels = [
            total_noise_psd_db(f, NoiseConditions.coastal_ocean(s)) for s in range(7)
        ]
        assert levels == sorted(levels)

    def test_sea_state_bounds(self):
        with pytest.raises(ValueError):
            NoiseConditions.coastal_ocean(7)


class TestNoiseLevel:
    def test_wider_band_collects_more_noise(self):
        cond = NoiseConditions.quiet_river()
        narrow = noise_level_db(18_500.0, 500.0, cond)
        wide = noise_level_db(18_500.0, 4000.0, cond)
        assert wide > narrow

    def test_doubling_band_adds_about_3db(self):
        cond = NoiseConditions.coastal_ocean(3)
        n1 = noise_level_db(18_500.0, 1000.0, cond)
        n2 = noise_level_db(18_500.0, 2000.0, cond)
        assert n2 - n1 == pytest.approx(3.0, abs=0.5)

    def test_level_exceeds_psd(self):
        cond = NoiseConditions.quiet_river()
        psd = total_noise_psd_db(18_500.0, cond)
        level = noise_level_db(18_500.0, 2000.0, cond)
        assert level == pytest.approx(psd + 33.0, abs=1.5)

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError):
            noise_level_db(18_500.0, 0.0, NoiseConditions.quiet_river())
