"""Tests for storage-assisted node operation."""

import math

import pytest

from repro.link.energy import (
    DutyCycledNode,
    StorageState,
    endurance_interrogations,
)


class TestStorage:
    def test_energy_quadratic_in_voltage(self):
        s = StorageState(capacitance_f=100e-6, voltage_v=2.0)
        assert s.energy_j() == pytest.approx(0.5 * 100e-6 * 4.0)

    def test_usable_energy_respects_floor(self):
        s = StorageState(voltage_v=2.4, min_voltage_v=1.8)
        assert s.usable_energy_j() < s.energy_j()
        s_empty = StorageState(voltage_v=1.8, min_voltage_v=1.8)
        assert s_empty.usable_energy_j() == 0.0

    def test_charge_accumulates_and_clamps(self):
        s = StorageState(capacitance_f=100e-6, voltage_v=0.0, max_voltage_v=2.0)
        s.charge(power_w=1e-3, duration_s=1.0)
        assert s.voltage_v > 0
        s.charge(power_w=1.0, duration_s=10.0)
        assert s.voltage_v == pytest.approx(2.0)

    def test_discharge_success_and_brownout(self):
        s = StorageState(capacitance_f=100e-6, voltage_v=2.4, min_voltage_v=1.8)
        usable = s.usable_energy_j()
        assert s.discharge(usable / 2)
        assert s.alive
        assert not s.discharge(usable)  # more than remains

    def test_validation(self):
        with pytest.raises(ValueError):
            StorageState(capacitance_f=0.0)
        with pytest.raises(ValueError):
            StorageState(min_voltage_v=3.0, max_voltage_v=2.0)
        s = StorageState()
        with pytest.raises(ValueError):
            s.charge(-1.0, 1.0)
        with pytest.raises(ValueError):
            s.discharge(-1.0)


class TestDutyCycledNode:
    def test_response_energy_is_microjoule_scale(self):
        node = DutyCycledNode()
        e = node.response_energy_j()
        assert 1e-9 < e < 1e-4

    def test_full_cap_answers_many_queries(self):
        node = DutyCycledNode()
        node.storage.voltage_v = node.storage.max_voltage_v
        answered = 0
        while node.try_respond() and answered < 100_000:
            answered += 1
        assert answered > 50

    def test_empty_cap_stays_silent(self):
        node = DutyCycledNode()
        node.storage.voltage_v = node.storage.min_voltage_v
        assert not node.try_respond()

    def test_recharge_near_reader(self):
        node = DutyCycledNode()
        node.storage.voltage_v = node.storage.min_voltage_v
        # 10 m from the reader: ~165 dB incident (E8 table).
        node.recharge(incident_level_db=165.0, duration_s=600.0)
        assert node.storage.voltage_v > node.storage.min_voltage_v
        assert node.try_respond()

    def test_idle_burn_drains(self):
        node = DutyCycledNode()
        node.storage.voltage_v = node.storage.max_voltage_v
        v0 = node.storage.voltage_v
        node.idle_wait(3600.0)  # an hour in the dark
        assert node.storage.voltage_v < v0


class TestEndurance:
    def test_endurance_positive_and_finite(self):
        node = DutyCycledNode()
        n = endurance_interrogations(node, polling_period_s=60.0)
        assert 0 < n < 10_000_000

    def test_faster_polling_shortens_wallclock_not_count_much(self):
        # Idle burn dominates: polling 10x more often barely changes the
        # per-response cost but the idle energy per poll drops 10x, so
        # the response count goes UP with faster polling.
        slow = endurance_interrogations(DutyCycledNode(), polling_period_s=600.0)
        fast = endurance_interrogations(DutyCycledNode(), polling_period_s=60.0)
        assert fast > slow

    def test_bigger_cap_lasts_longer(self):
        small = DutyCycledNode(storage=StorageState(capacitance_f=100e-6))
        large = DutyCycledNode(storage=StorageState(capacitance_f=1000e-6))
        assert endurance_interrogations(large) > endurance_interrogations(small)
