"""Regenerate docs/API.md from the package's public (`__all__`) surface.

Run from the repository root:  python tools/gen_api_docs.py
"""

import importlib
import inspect
from pathlib import Path

CAMPAIGNS_SECTION = """\
## Running large campaigns

The paper's evaluation rests on >1,500 field trials; simulation
campaigns of that size run through `repro.sim.parallel`:

```python
from repro.sim import (
    Scenario, TrialCampaign, run_campaign_parallel, sweep_range,
)

scenarios = sweep_range(Scenario.river(), [50, 150, 250, 330, 450, 600])
result = run_campaign_parallel(
    scenarios, TrialCampaign(trials_per_point=250, seed=2023), workers=4
)
```

Results are **bit-identical** to the serial `run_campaign` for the same
seed: per-trial entropy comes from `TrialCampaign.trial_seeds`
(`SeedSequence((seed, point)).spawn(n)`) regardless of which worker runs
a trial, and chunks are re-assembled in trial order before aggregation.
`workers=1` runs serially in-process; campaigns carrying non-picklable
factories fall back to the same path automatically.

Speed comes mostly from memoization, which is on by default and
invisible in the returned numbers:

- `repro.sim.cache` memoizes traced channel responses per deployment
  geometry (`reader_node_response`, `channel_cache_info`,
  `clear_channel_cache`, `set_channel_cache_enabled`).
- `repro.dsp.noisegen` caches the Wenz PSD shaping filter per
  `(n, fs, conditions, carrier)` (`clear_noise_cache`,
  `set_noise_cache_enabled`, `set_pointwise_psd`).

Caches are process-local and keyed by value; invalidate explicitly
after mutating water/surface tables in place.

Per-stage wall-clock (channel / reflect / noise / demod) is available
via `collect_stage_timings` or the `timings=` argument. The perf
harness `tools/bench_perf.py` times the seed-style serial path against
the cached serial and parallel engines and writes the next
`BENCH_<n>.json` (arms `seed_baseline` / `optimized_serial` /
`optimized_parallel`, each with `elapsed_s`, `trials`,
`trials_per_sec`, plus `speedup`, `stage_timings`, the run's `metrics`
snapshot with a `cache` hit/miss summary, and a
`parallel_bit_identical` flag); `tools/bench_compare.py` diffs
consecutive records and exits non-zero when an optimized arm's
trials/sec regressed by more than 20%. A tiny-N smoke of the same
harness runs in the test suite under the `bench_smoke` marker
(`pytest -m bench_smoke`).

## Observability

`repro.obs` instruments the campaign path; everything is zero-cost
when unused and merges deterministically (in trial order) under the
parallel runner:

- **Spans** — `span(name)` brackets nested work; `collect_spans`
  installs a `SpanTracer` that aggregates `path -> (total_s, count)`.
  The engine emits `campaign > point > trial >
  channel/reflect/noise/demod`.
- **Metrics** — `counter` / `gauge` / `histogram` return named
  instrument handles writing into the active `MetricsRegistry`
  (swap one in with `use_registry`). Engine instruments:
  `repro.sim.cache.*`, `repro.sim.parallel.*`, `repro.phy.receiver.*`,
  `repro.link.stats.*`.
- **Manifests + events** — `run_observed_campaign(...)` returns
  `(CampaignResult, RunManifest)` and optionally persists the manifest
  (`save_manifest` / `load_manifest` in `repro.sim.export`,
  schema-checked round trip) plus a JSONL `EventLog`
  (`campaign_start` / `chunk_done` / `point_end` / `campaign_end`).

Render a recorded run with the CLI::

    python -m repro sweep --manifest run.json --events run.jsonl
    python -m repro obs report run.json

The E-series benchmarks emit the same artifacts per campaign when
`VAB_OBS_DIR=<dir>` is set.
"""

LINT_SECTION = """\
## Linting (vablint)

`repro.analysis` is a stdlib-`ast` linter for the invariants the
reproduction's guarantees rest on — campaign determinism, unit
discipline in the physics, a typed public API. Run it standalone or as
a CLI subcommand (same exit codes: 0 clean, 1 findings, 2 unusable
input such as a parse error, reported as pseudo-rule `VAB000`)::

    python tools/vablint.py              # lints src/repro
    python tools/vablint.py --json pkg/  # machine-readable report
    python tools/vablint.py --units      # + dimensional analysis
    python -m repro lint --catalogue     # rule catalogue

Directory recursion skips `tests/lint_fixtures/**` by default (the
fixtures are deliberately dirty); add globs with `--exclude PATTERN`
(repeatable — passing any `--exclude` replaces the default list), and
spread the per-file rules over processes with `--jobs N` (output is
deterministic regardless of job count).

### Rule catalogue

| id | name | enforces |
|----|------|----------|
| `VAB001` | unseeded-rng | no unseeded `np.random.default_rng()` / legacy `np.random.*` global state in library code |
| `VAB002` | rng-in-loop | no `Generator` construction inside loop bodies (per-trial hot paths) |
| `VAB003` | unit-suffix-mismatch | no dB/linear, Hz/rad, m/km additive mixing; dB-valued expressions bind to `*_db` names |
| `VAB004` | wall-clock-in-sim | no `time.time` / `datetime.now` outside `repro.obs` (telemetry is exempt) |
| `VAB005` | api-hygiene | no mutable default arguments; public functions carry full type annotations |
| `VAB006` | db-domain-product | (`--units`) no multiplying/dividing two dB-domain quantities — log-domain values compose additively |
| `VAB007` | db-linear-mix | (`--units`) no additive arithmetic or bindings mixing dB-domain and linear-domain quantities |
| `VAB008` | hz-rad-confusion | (`--units`) no Hz vs rad/s (or kHz) conflicts in arithmetic, call arguments, trig/filter calls |
| `VAB009` | m-km-mix | (`--units`) no metre/kilometre mixing; `dB/km` coefficients times metres demand the `/ 1e3` |
| `VAB010` | call-site-unit-conflict | (`--units`) no argument units contradicting a callee's parameters, or returns contradicting declarations |
| `VAB011` | silent-broadcast | (`--units`) no elementwise arithmetic between symbolic shapes that provably cannot broadcast (the missing-`keepdims` class of bug) |
| `VAB012` | batch-collapsing-reduction | (`--units`) no axis-less reductions of named batch arrays, no reduction axes that exceed the declared rank |
| `VAB013` | complex-downcast | (`--units`) no silent complex→real decay: `float()`/real-buffer stores/ordered comparisons of complex fields must go through `np.abs`/`.real` |
| `VAB014` | cache-mutation | (`--units`) no in-place writes to arrays handed out by the worker/cache boundary (`reader_node_response`, `cached_between`) — copy first |
| `VAB015` | set-order-accumulation | (`--units`) no order-dependent accumulation (`+=`, RNG draws) driven by iteration over `set`/`frozenset` — sort first |
| `VAB016` | shape-contract-violation | (`--units`) no returns or call arguments contradicting a `Shaped[...]` contract (rank, named dims, dtype family) |
| `VAB017` | hidden-cache-input | (`--units`) no hidden input (environ, wall-clock, filesystem, host config, mutable global, ambient RNG) reaching a memoized or content-addressed computation whose cache key cannot see it |
| `VAB018` | cache-hit-divergence | (`--units`) no side effect (global/argument mutation, file write) escaping a memoized function — it happens on the computing call and never again on a cache hit |
| `VAB019` | worker-rng-indiscipline | (`--units`) no callable crossing the process boundary that draws from an ambient RNG stream instead of a `SeedSequence`-derived generator threaded through its parameters |
| `VAB020` | unpicklable-submit | (`--units`) no lambdas or closure-capturing nested functions on the `ProcessPool` submit path |
| `VAB021` | version-stamp-completeness | (`--units`) every `*_ENGINE_VERSION` constant must flow into an `engine_versions={...}` manifest stamp (and hence the `run_key`) |
| `VAB022` | host-dependent-result | (`--units`) no host-configuration read (`os.cpu_count()`, TTY/CI detection, locale) flowing into a returned value without a declared `reads:host` grant |

### Dimensional analysis (`--units`)

VAB006..VAB010 come from `repro.analysis.units`: a flow-sensitive,
interprocedural abstract interpretation that tracks a unit lattice
through assignments, arithmetic, and calls, with a two-pass fixed
point so callee summaries (parameter/return units) flow to call sites
across files. Unit facts are seeded from three sources, in priority
order:

1. **Annotations** — the vocabulary in `repro.analysis.units.vocab`
   exports `Annotated[float, UnitTag(...)]` aliases (`DB`, `DBM`,
   `DB_PER_KM`, `LINEAR`, `HZ`, `KHZ`, `RAD_PER_S`, `RAD`, `DEG`,
   `METERS`, `KM`, `MPS`, `SECONDS`, `MS`, `OHM`). They erase to
   `float` at runtime; the engine reads them syntactically.
2. **Signature DB** — `repro.analysis.units.sigdb` curates units for
   the physics API (`spreading_loss_db`, `thorp_absorption_db_per_km`,
   `noise_level_db`, ...) plus `math`/`numpy` intrinsics (`sin` wants
   radians, `log10` feeds the dB promotion rules), so un-annotated
   call sites are still checked.
3. **Name suffixes** — `_db`, `_hz`, `_m`, `_km`, `_mps`, `_db_per_km`
   and friends, shared with VAB003 (bare `_s` is deliberately not
   seconds: `w_s`/`f_s` are frequencies).

To annotate a new physics function, import the aliases and declare the
contract; the engine then checks both the body and every caller::

    from repro.analysis.units.vocab import DB, HZ, METERS

    def my_loss_db(range_m: METERS, frequency_hz: HZ) -> DB:
        ...

Prefer annotation for new code; add a `sigdb` entry only for functions
whose signature you cannot touch.

Conversions are algebraic, not pattern-matched: `m / 1e3` is `km`,
`alpha_db_per_km * range_m` is the pseudo-unit `dB*m/km` which only
becomes `dB` after the missing `/ 1e3` (the paper's flagship unit
trap), `2 * pi * f_hz` is `rad/s`, and `10 * log10(x)` promotes to dB.

### Shape/dtype dataflow analysis (also `--units`)

VAB011..VAB016 come from `repro.analysis.shapes`: a second
flow-sensitive, interprocedural engine over the same call-graph
machinery that tracks symbolic ndarray shapes, dtype families, and
determinism taints through the batched kernels. Shape facts are seeded
by `Annotated` contracts from `repro.analysis.shapes.vocab` —
`Shaped["trials", "samples"]`, plus the dtype-carrying
`ComplexShaped` / `FloatShaped` / `IntShaped` — on the
batched APIs in `repro.phy.batch`, `repro.vanatta.fastfield`, and
`repro.sim.engine`, and by a curated numpy signature DB
(`repro.analysis.shapes.sigdb`) for the un-annotated rest::

    from repro.analysis.shapes.vocab import ComplexShaped

    def suppress_carrier_batch(
        self, records: ComplexShaped["trials", "samples"]
    ) -> ComplexShaped["trials", "samples"]:
        ...

Dimension tokens are symbolic names (`"trials"`), fixed extents (`3`;
`1` broadcasts), `"?"` (unknown), and `"..."` (any leading block);
dtypes form the coarse lattice `complex > float > int > bool`. The
engine is deliberately conservative — a rule fires only on a
*provable* conflict (two distinct names or two distinct extents in one
broadcast slot), so unknown shapes stay silent — and summaries flow
interprocedurally: an un-annotated caller of an annotated kernel
inherits the kernel's return shape/dtype. The flagship catch is the
missing-`keepdims` slip, `records - records.mean(axis=1)`, which pits
`"samples"` against `"trials"` in one broadcast slot (VAB011); the
same machinery flags silent phase loss on the complex field sums
(VAB013) and in-place writes to channel-cache storage (VAB014). The
engine shares the incremental cache format (sibling
`.vablint_shapes_cache.json` derived from `--units-cache`), the
baseline, the suppression syntax, and the JSON report (a `shapes`
stats block next to `units`).

### Effect/purity analysis (also `--units`)

VAB017..VAB022 come from `repro.analysis.effects`: a third
flow-sensitive, interprocedural engine over the same call-graph
machinery that tracks *effects* — which functions read ambient state,
which mutate state, and which callables cross the `ProcessPool`
process boundary. Effects are nine atoms (`reads:environ`,
`reads:clock`, `reads:file`, `reads:host`, `reads:global`,
`mutates:global`, `mutates:arg`, `writes:file`, `rng:ambient`), seeded
from a curated signature DB (`repro.analysis.effects.sigdb`: `os`,
`time`, `locale`, `numpy.random`, the repro cache/RNG API) and from
contracts in `repro.analysis.effects.vocab`::

    from repro.analysis.effects.vocab import Effectful, Pure

    def _site_key(channel, source, receiver) -> Pure[tuple]: ...

    def default_workers() -> Effectful[int, "reads:host"]: ...

`Pure[T]` declares "the result depends only on the arguments, no
observable side effects" — the property memoization and the
content-addressed ledger rest on. `Effectful[T, atoms...]` is a
*grant*: the named effects are intentional and documented, so the
engine reports only effects the contract does **not** cover.
Un-annotated callers inherit their callees' effects through the fixed
point, so a hidden input two calls deep still reaches the rule at the
memoization boundary. (For mypy-gated modules the same contracts are
spelled `Annotated[T, READS_HOST]` with the tag constants.)

The flagship catch is **cache poisoning by a hidden input** (VAB017).
This looks harmless::

    @lru_cache(maxsize=None)
    def cached_gain(range_m: float) -> float:
        trim = float(os.getenv("VAB_GAIN_TRIM", "0.0"))  # VAB017
        return spreading_loss_db(range_m) + trim

The cache key is `range_m` alone; the environ read is invisible to it.
The first call bakes whatever `VAB_GAIN_TRIM` happened to be into the
memo, and every later call — any trim, any caller — replays that
stale value. Under a *content-addressed* store (`repro.obs.ledger`
keys results by config sha) the damage is durable: the poisoned number
is filed under a key that claims to fully describe it, and dedupe
serves it to every future run with the same config. The fix is
mechanical: pass the trim as an argument (it joins the key), or —
when the read genuinely must not enter the key (a display knob, a
scheduling hint) — declare `Effectful[..., "reads:environ"]` to
accept the contract visibly.

The same machinery proves the version-stamp manifest complete
(VAB021): every `*_ENGINE_VERSION` constant anywhere in the tree must
flow into the `engine_versions={...}` stamp that
`repro.sim.parallel` embeds in campaign manifests (and hence into
`run_key`), so adding an engine without stamping it fails lint
instead of silently colliding ledger entries. The determinism hot
paths (`repro.sim.cache`, `repro.sim.parallel`, `repro.obs.ledger`,
`repro.rng`) carry explicit contracts; the committed tree is
effect-clean with zero suppressions.

**Incremental cache** — `--units-cache PATH` (tool default
`.vablint_units_cache.json`, git-ignored) keys per-file results by
content sha256 + engine version; the shapes and effects engines keep
sibling caches at the derived `.vablint_shapes_cache.json` /
`.vablint_effects_cache.json` paths. An edit re-analyzes only the
file and its call-graph dependents; everything else is replayed
byte-identically from cache. `--no-units-cache` forces a cold run
(what CI does); version bumps and damaged caches degrade to cold runs
automatically. For an even faster inner loop, `--changed [REF]`
restricts the per-file rules to files that differ from a git ref
(default `HEAD`) plus untracked files — the dataflow engines still
see the whole tree (so a contract edit surfaces findings in unchanged
dependents) but force the changed files and their dependents through
re-analysis. `--stats` appends per-engine wall-clock timings and
cache hit/miss counts to the report (embedded under `"stats"` in JSON
mode; opt-in so the default report stays byte-deterministic), and
`--sarif PATH` additionally writes a SARIF 2.1.0 log for GitHub code
scanning.

**Differential baseline** — `--baseline lint_baseline.json` absorbs
known findings (keyed by `path::rule::message`, line-number-free so
unrelated edits don't churn) and fails only on *new* ones;
`--update-baseline` rewrites the file from the current tree. The
committed `lint_baseline.json` is empty — the tree is dimensionally
clean — so CI's gate is effectively zero-tolerance while still giving
future debt a paved ramp-down path.

### The RNG-threading contract (what VAB001/VAB002 enforce)

Every stochastic entry point takes an explicit `np.random.Generator`.
Campaign code derives all of its generators up front from centralized
seeds — `TrialCampaign.trial_seeds(point)` spawns one child seed per
trial via `SeedSequence((seed, point))` — and threads them down, which
is what makes the parallel runner bit-identical to the serial one.
When an API allows `rng=None` for interactive convenience, the
fallback is `repro.rng.fallback_rng()`: a process-global generator
seeded from the documented `DEFAULT_FALLBACK_SEED`, so even "unseeded"
use is reproducible run-to-run (reset it with `reseed_fallback`).

### Suppressing a finding

Suppression is per-line or per-file::

    x = np.random.default_rng()  # vablint: disable=VAB001
    y = legacy()                 # vablint: disable=VAB001,VAB004
    z = anything()               # vablint: disable

    # vablint: disable-file=VAB003   (anywhere in the file)
    # vablint: disable-file          (whole file, every rule)

A bare `disable` (no `=RULES`) suppresses **every** rule on that line,
including the unit rules; `disable=all` is the explicit spelling of the
same thing. Prefer naming the rule — bare disables also swallow
findings from rules added later. Comments inside string literals do
not count (the scanner tokenizes).

### Adding a rule

Subclass `repro.analysis.Rule`, set `rule_id` / `name` / `summary`,
implement `check(ctx: FileContext) -> Iterator[Finding]` (walk
`ctx.tree`, resolve dotted callables with `ctx.resolve(node)`, emit via
`ctx.finding(self, node, message)`), and decorate with `@register`.
Suppression, reporting, exit codes, and the fingerprint pick the rule
up automatically; add a bad/clean fixture pair under
`tests/lint_fixtures/` to pin its behavior.

### Provenance

`tree_fingerprint(paths)` hashes the linted sources together with the
rule ids and the clean/dirty verdict. Campaign manifests record it via
`run_observed_campaign(..., lint_fingerprint=True)` (CLI:
`python -m repro sweep --manifest run.json --lint-fingerprint`), and
`tools/bench_perf.py` refuses to write a `BENCH_<n>.json` from a tree
that does not lint clean (`--allow-dirty-lint` overrides); the lint
record in each BENCH file carries `units_engine_version`,
`shapes_engine_version`, and `effects_engine_version` so perf history
pins which checkers vetted the tree (campaign manifests stamp the
same versions under `engine_versions` — completeness enforced by
VAB021). Each BENCH record also carries a `lint_warm` arm: the
three-engine lint over `src/repro` served entirely from warm
incremental caches, in files/sec; `tools/bench_compare.py` alerts
when it gets more than 2x slower (the signature of a cache-key or
dependent-closure bug). CI runs the full gate — per-file rules plus
`--units`, differenced against the committed `lint_baseline.json` —
before the typed-API check, renders the JSON report as inline GitHub
problem-matcher annotations (`tools/lint_annotations.py`), uploads
the SARIF log to code scanning, and keeps both reports as build
artifacts.

### Typed-API gate

`repro` ships `py.typed`. The leaf packages `repro.obs`,
`repro.geometry`, `repro.phy.bits`, and `repro.link.stats` are fully
annotated and checked in CI with `mypy` under `disallow_untyped_defs`
(config in `pyproject.toml`); the numeric core is checked leniently.
"""

PACKAGES = [
    "repro.core",
    "repro.analysis",
    "repro.obs",
    "repro.geometry",
    "repro.acoustics",
    "repro.dsp",
    "repro.piezo",
    "repro.vanatta",
    "repro.phy",
    "repro.link",
    "repro.sim",
    "repro.baselines",
]


def first_doc_line(obj) -> str:
    """First docstring line, empty when undocumented."""
    if not obj.__doc__:
        return ""
    return obj.__doc__.strip().split("\n")[0]


def build() -> str:
    """Assemble the markdown document."""
    lines = [
        "# API index",
        "",
        "Auto-generated from the package's public (`__all__`) surface.",
        "Regenerate with `python tools/gen_api_docs.py`.",
        "",
        CAMPAIGNS_SECTION,
        LINT_SECTION,
    ]
    for name in PACKAGES:
        module = importlib.import_module(name)
        lines.append(f"## `{name}`")
        lines.append("")
        doc = (module.__doc__ or "").strip().split("\n\n")[0].replace("\n", " ")
        if doc:
            lines.extend([doc, ""])
        for symbol in getattr(module, "__all__", []):
            obj = getattr(module, symbol, None)
            if obj is None:
                continue
            kind = (
                "class" if inspect.isclass(obj)
                else "function" if callable(obj)
                else "constant"
            )
            lines.append(f"- **`{symbol}`** ({kind}) — {first_doc_line(obj)}")
        lines.append("")
    return "\n".join(lines)


if __name__ == "__main__":
    Path("docs/API.md").write_text(build())
    print("wrote docs/API.md")
