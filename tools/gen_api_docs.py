"""Regenerate docs/API.md from the package's public (`__all__`) surface.

Run from the repository root:  python tools/gen_api_docs.py
"""

import importlib
import inspect
from pathlib import Path

PACKAGES = [
    "repro.core",
    "repro.geometry",
    "repro.acoustics",
    "repro.dsp",
    "repro.piezo",
    "repro.vanatta",
    "repro.phy",
    "repro.link",
    "repro.sim",
    "repro.baselines",
]


def first_doc_line(obj) -> str:
    """First docstring line, empty when undocumented."""
    if not obj.__doc__:
        return ""
    return obj.__doc__.strip().split("\n")[0]


def build() -> str:
    """Assemble the markdown document."""
    lines = [
        "# API index",
        "",
        "Auto-generated from the package's public (`__all__`) surface.",
        "Regenerate with `python tools/gen_api_docs.py`.",
        "",
    ]
    for name in PACKAGES:
        module = importlib.import_module(name)
        lines.append(f"## `{name}`")
        lines.append("")
        doc = (module.__doc__ or "").strip().split("\n\n")[0].replace("\n", " ")
        if doc:
            lines.extend([doc, ""])
        for symbol in getattr(module, "__all__", []):
            obj = getattr(module, symbol, None)
            if obj is None:
                continue
            kind = (
                "class" if inspect.isclass(obj)
                else "function" if callable(obj)
                else "constant"
            )
            lines.append(f"- **`{symbol}`** ({kind}) — {first_doc_line(obj)}")
        lines.append("")
    return "\n".join(lines)


if __name__ == "__main__":
    Path("docs/API.md").write_text(build())
    print("wrote docs/API.md")
