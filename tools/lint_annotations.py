#!/usr/bin/env python
"""Emit GitHub workflow annotations from a vablint JSON report.

Reads the ``--json`` report written by ``tools/vablint.py`` (or ``repro
lint --json``) and prints one `workflow command`_ per finding::

    ::error file=src/repro/x.py,line=12,col=5,title=VAB013::message

GitHub renders these as inline annotations on the pull-request diff, so
lint findings land on the offending line without a problem-matcher
registration. Findings become ``error`` annotations; a report that is
clean (or missing, for runs that failed before the report was written)
produces no output. The exit code is always 0 — the lint step itself
owns pass/fail; this tool only decorates.

Usage::

    python tools/lint_annotations.py lint-report.json

.. _workflow command:
   https://docs.github.com/actions/reference/workflow-commands-for-github-actions
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Dict, Iterable, List, Optional


def _escape_data(value: str) -> str:
    """Escape a workflow-command message payload."""
    return (
        value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    )


def _escape_property(value: str) -> str:
    """Escape a workflow-command property (file, title, ...)."""
    return (
        _escape_data(value).replace(":", "%3A").replace(",", "%2C")
    )


def annotation_lines(report: Dict[str, object]) -> List[str]:
    """``::error`` workflow commands for every finding and parse error."""
    lines: List[str] = []
    findings: Iterable[Dict[str, object]] = list(
        report.get("findings", [])  # type: ignore[arg-type]
    ) + list(report.get("errors", []))  # type: ignore[arg-type]
    for raw in findings:
        props = ",".join(
            f"{key}={_escape_property(str(raw[source]))}"
            for key, source in (
                ("file", "path"), ("line", "line"),
                ("col", "col"), ("title", "rule"),
            )
            if source in raw
        )
        message = _escape_data(str(raw.get("message", "")))
        lines.append(f"::error {props}::{message}")
    return lines


def main(argv: Optional[List[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if len(args) != 1:
        print(
            "usage: lint_annotations.py LINT_REPORT_JSON", file=sys.stderr
        )
        return 0
    path = Path(args[0])
    if not path.is_file():
        print(f"lint_annotations: no report at {path}", file=sys.stderr)
        return 0
    try:
        report = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        print(f"lint_annotations: unreadable report: {exc}", file=sys.stderr)
        return 0
    for line in annotation_lines(report):
        print(line)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
