"""Machine-check the perf trajectory between BENCH_*.json records.

``tools/bench_perf.py`` writes one ``BENCH_<n>.json`` per full run;
this tool diffs the newest record against the previous one (or any two
records given explicitly) and **exits non-zero when an optimized arm's
trials/sec regressed by more than the threshold** (default 20%), so CI
and pre-merge checks catch perf regressions without a human reading
numbers.

Run from the repository root::

    PYTHONPATH=src python tools/bench_compare.py                 # newest vs previous
    PYTHONPATH=src python tools/bench_compare.py OLD.json NEW.json
    PYTHONPATH=src python tools/bench_compare.py --threshold 0.1
    PYTHONPATH=src python tools/bench_compare.py --arms optimized_serial

``--arms`` narrows the gate to specific arms. The main use is tight
thresholds on the batched serial arm (e.g. the <2% runtime-probe
overhead budget): the parallel arm's trials/sec folds in process-pool
scheduling, which on small CI boxes swings far more than any real code
change, so a tight threshold on it measures the machine instead.

Exit codes: 0 = no regression (or fewer than two records to compare),
1 = regression beyond the threshold, 2 = unreadable/invalid records.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

GATED_ARMS = (
    "optimized_serial", "optimized_parallel", "arrayfactor", "lint_warm"
)
"""Arms whose regressions fail the check. ``seed_baseline`` is an
emulation of historical code, ``serial_fallback`` is the pinned
per-trial path kept for exotic receiver configs, and
``arrayfactor_loop`` is the per-pair reference loop the batched
array-factor kernel is scored against — informational only."""

INFO_ARMS = ("seed_baseline", "serial_fallback", "arrayfactor_loop")

ARM_THRESHOLDS = {"lint_warm": 0.50}
"""Per-arm overrides of the global ``--threshold``. ``lint_warm``
times a sub-second warm-cache lint, so small-box jitter is large in
relative terms; it alerts only when the warm lint gets more than 2x
slower (files/sec halves) — the signature of a cache-key or
dependent-closure bug, not noise."""


def bench_paths(root: Path) -> List[Path]:
    """Existing BENCH_<n>.json files under ``root``, ordered by n."""
    indexed = []
    for path in root.glob("BENCH_*.json"):
        suffix = path.stem[len("BENCH_"):]
        if suffix.isdigit():
            indexed.append((int(suffix), path))
    return [path for _, path in sorted(indexed)]


def arm_rate(record: dict, arm: str) -> Optional[float]:
    """trials/sec of one arm, None when absent or unmeasured."""
    data = record.get(arm)
    if not isinstance(data, dict):
        return None
    rate = data.get("trials_per_sec")
    return float(rate) if rate else None


def compare(
    old: dict,
    new: dict,
    threshold: float = 0.20,
    arms: Optional[Tuple[str, ...]] = None,
) -> Tuple[List[dict], List[dict]]:
    """Diff two BENCH records.

    Returns ``(rows, regressions)``: one row per arm present in both
    records (with old/new rates and the relative change), and the
    subset of gated arms whose throughput dropped by more than the
    arm's threshold (:data:`ARM_THRESHOLDS` override, else
    ``threshold``). ``arms`` restricts which arms are gated (default:
    every arm in :data:`GATED_ARMS`); the table still lists all arms.
    """
    gated = GATED_ARMS if arms is None else tuple(arms)
    rows = []
    regressions = []
    for arm in (*GATED_ARMS, *INFO_ARMS):
        old_rate = arm_rate(old, arm)
        new_rate = arm_rate(new, arm)
        if old_rate is None or new_rate is None:
            continue
        change = (new_rate - old_rate) / old_rate
        row = {
            "arm": arm,
            "old_rate": old_rate,
            "new_rate": new_rate,
            "change": change,
            "gated": arm in gated,
        }
        rows.append(row)
        if arm in gated and change < -ARM_THRESHOLDS.get(arm, threshold):
            regressions.append(row)
    return rows, regressions


def config_mismatches(old: dict, new: dict) -> List[str]:
    """Config keys that differ between two records (trials/sec still
    normalizes per trial, but the reader should know)."""
    old_cfg = old.get("config", {})
    new_cfg = new.get("config", {})
    return sorted(
        key
        for key in set(old_cfg) | set(new_cfg)
        if old_cfg.get(key) != new_cfg.get(key)
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("old", nargs="?", type=Path,
                        help="older BENCH record (default: second-newest)")
    parser.add_argument("new", nargs="?", type=Path,
                        help="newer BENCH record (default: newest)")
    parser.add_argument("--dir", type=Path, default=REPO_ROOT,
                        help="directory holding BENCH_<n>.json files")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="max tolerated relative trials/sec drop "
                             "(default 0.20)")
    parser.add_argument("--arms", type=str, default=None,
                        help="comma-separated arms to gate (default: "
                             f"{','.join(GATED_ARMS)}); others stay "
                             "informational")
    args = parser.parse_args(argv)
    gated_arms = None
    if args.arms is not None:
        gated_arms = tuple(a for a in args.arms.split(",") if a)
        unknown = set(gated_arms) - set(GATED_ARMS) - set(INFO_ARMS)
        if unknown:
            parser.error(f"unknown arm(s): {', '.join(sorted(unknown))}")
    if (args.old is None) != (args.new is None):
        parser.error("give both OLD and NEW, or neither")

    if args.old is None:
        history = bench_paths(args.dir)
        if len(history) < 2:
            print(
                f"bench_compare: found {len(history)} BENCH record(s) in "
                f"{args.dir} — need two to compare; nothing to check."
            )
            return 0
        old_path, new_path = history[-2], history[-1]
    else:
        old_path, new_path = args.old, args.new

    try:
        old = json.loads(old_path.read_text())
        new = json.loads(new_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"bench_compare: cannot read records: {exc}", file=sys.stderr)
        return 2

    rows, regressions = compare(
        old, new, threshold=args.threshold, arms=gated_arms
    )
    if not rows:
        print("bench_compare: no comparable arms between records",
              file=sys.stderr)
        return 2

    print(f"bench_compare: {old_path.name} -> {new_path.name} "
          f"(threshold {100 * args.threshold:.0f}%)")
    for key in config_mismatches(old, new):
        print(f"  WARNING: config differs: {key} "
              f"({old.get('config', {}).get(key)!r} -> "
              f"{new.get('config', {}).get(key)!r})")
    print(f"  {'arm':<20} {'old t/s':>10} {'new t/s':>10} {'change':>8}")
    for row in rows:
        marker = "" if row["gated"] else "  (info)"
        print(f"  {row['arm']:<20} {row['old_rate']:>10.2f} "
              f"{row['new_rate']:>10.2f} {100 * row['change']:>+7.1f}%"
              f"{marker}")

    if regressions:
        for row in regressions:
            print(
                f"REGRESSION: {row['arm']} dropped "
                f"{-100 * row['change']:.1f}% "
                f"({row['old_rate']:.2f} -> {row['new_rate']:.2f} trials/s)",
                file=sys.stderr,
            )
        return 1
    print("  OK: no gated arm regressed beyond the threshold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
