"""Perf-regression harness for the Monte-Carlo campaign engine.

Measures trials/sec of four execution arms on the same seeded campaign
(a river BER-vs-range sweep, the shape of the paper's headline figure):

* ``seed_baseline`` — the seed repo's serial path, emulated by disabling
  the channel-response and noise-shaping caches, forcing per-frequency
  Wenz evaluation, and rebuilding the receiver per trial. (The baseline
  still gets this PR's O(n) DC blocker and memoized preamble templates,
  so reported speedups are *conservative* relative to the true seed.)
* ``serial_fallback`` — the cached engine pinned to the per-trial loop
  (``engine="per-trial"``), one process. This is the path custom
  ``receiver_factory`` campaigns take.
* ``optimized_serial`` — the cached engine on the batched point path
  (one ``(trials, samples)`` block per point), one process.
* ``optimized_parallel`` — the batched engine sharded by point over a
  ``ProcessPoolExecutor``.

A ``lint_warm`` arm (:func:`run_lint_warm_bench`) times the
three-engine ``vablint`` run over ``src/repro`` served entirely from
warm incremental caches (files/sec), so ``bench_compare`` can alert
when the warm lint path gets more than 2x slower.

A fifth pair of arms benchmarks the Van Atta array-factor kernel
(``arrayfactor`` vs the ``arrayfactor_loop`` per-pair reference; see
:func:`run_arrayfactor_bench`): a monostatic pattern sweep of a
1024-element array over 181 angles, with a >=50x speedup floor and a
batched-vs-loop parity check enforced on full runs.

Also records per-stage wall-clock (channel / reflect / noise / demod)
via :mod:`repro.sim.profiling`, the run's metrics-registry snapshot
(cache hits/misses, receiver failures, batch sizes — see
:mod:`repro.obs.metrics`), and verifies two bit-identity contracts —
parallel == serial, and batched == per-trial fallback — then writes
everything (stamped with the batched kernel's
``batched_engine_version``) to the next ``BENCH_<n>.json`` — the files
``tools/bench_compare.py`` diffs to machine-check the perf trajectory.

Run from the repository root::

    PYTHONPATH=src python tools/bench_perf.py            # full campaign
    PYTHONPATH=src python tools/bench_perf.py --smoke    # tiny-N sanity

The pytest smoke test (``-m bench_smoke``) drives :func:`run_bench`
directly with tiny N so executor regressions surface in tier-1.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, List, Optional, Sequence

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis import tree_fingerprint
from repro.dsp import noisegen
from repro.obs.metrics import MetricsRegistry
from repro.obs.probes import probe_mode
from repro.phy.batch import BATCHED_ENGINE_VERSION
from repro.vanatta.array import VanAttaArray
from repro.vanatta.fastfield import (
    FASTFIELD_ENGINE_VERSION,
    ArrayFactorEngine,
    reference_response,
)
from repro.sim import cache
from repro.sim.engine import simulate_trial
from repro.sim.parallel import run_campaign_parallel
from repro.sim.profiling import StageTimings
from repro.sim.scenario import Scenario
from repro.sim.sweep import sweep_range
from repro.sim.trials import TrialCampaign, run_campaign

DEFAULT_RANGES_M = [50.0, 150.0, 250.0, 330.0, 450.0, 600.0]


def bench_paths(root: Path) -> List[Path]:
    """Existing BENCH_<n>.json files under ``root``, ordered by n."""
    indexed = []
    for path in root.glob("BENCH_*.json"):
        suffix = path.stem[len("BENCH_"):]
        if suffix.isdigit():
            indexed.append((int(suffix), path))
    return [path for _, path in sorted(indexed)]


def next_bench_path(root: Path) -> Path:
    """The next free BENCH_<n>.json slot (keeps the perf trajectory)."""
    existing = bench_paths(root)
    n = int(existing[-1].stem[len("BENCH_"):]) + 1 if existing else 1
    return root / f"BENCH_{n}.json"


def lint_gate(allow_dirty: bool) -> Optional[dict]:
    """Lint-fingerprint the library tree before recording a benchmark.

    ``BENCH_<n>.json`` files are the repo's durable perf trajectory;
    recording one from a tree that fails ``vablint`` (non-deterministic
    RNG use, unit mix-ups, wall-clock in the sim path) would bake
    unreproducible numbers into history. Returns the fingerprint record
    to embed — stamped with the dimensional-analysis and shape-analysis
    engine versions so each BENCH file pins which checkers vetted the
    tree — or ``None`` when the tree is dirty and ``allow_dirty`` is
    false (the caller must refuse to write).
    """
    from repro.analysis.effects import ENGINE_VERSION as EFFECTS_ENGINE_VERSION
    from repro.analysis.shapes import ENGINE_VERSION as SHAPES_ENGINE_VERSION
    from repro.analysis.units import ENGINE_VERSION

    record = tree_fingerprint([REPO_ROOT / "src" / "repro"])
    if not record["clean"] and not allow_dirty:
        return None
    record["units_engine_version"] = ENGINE_VERSION
    record["shapes_engine_version"] = SHAPES_ENGINE_VERSION
    record["effects_engine_version"] = EFFECTS_ENGINE_VERSION
    return record


@contextmanager
def seed_baseline_mode() -> Iterator[None]:
    """Disable every campaign-level cache (emulate the seed hot path)."""
    old_pointwise = noisegen.set_pointwise_psd(True)
    old_noise_cache = noisegen.set_noise_cache_enabled(False)
    old_channel_cache = cache.set_channel_cache_enabled(False)
    noisegen.clear_noise_cache()
    cache.clear_channel_cache()
    try:
        yield
    finally:
        noisegen.set_pointwise_psd(old_pointwise)
        noisegen.set_noise_cache_enabled(old_noise_cache)
        cache.set_channel_cache_enabled(old_channel_cache)


def run_baseline(
    scenarios: Sequence[Scenario], campaign: TrialCampaign
) -> int:
    """The seed's per-trial loop: nothing hoisted, nothing cached.

    Mirrors the seed ``TrialCampaign.run_point``: the node is built once
    per point but the receiver and the channel response are recomputed
    inside every trial, and the Wenz PSD is evaluated per FFT bin in
    Python.
    """
    n = 0
    with seed_baseline_mode():
        for i, scenario in enumerate(scenarios):
            children = campaign.trial_seeds(i)
            node = campaign.node_factory()
            for child in children:
                rng = np.random.default_rng(child)
                payload = bytes(
                    rng.integers(0, 256, size=campaign.payload_bytes, dtype=np.uint8)
                )
                simulate_trial(
                    scenario,
                    node=node,
                    payload=payload,
                    rng=rng,
                    frame_config=campaign.frame_config,
                    receiver=None,
                    si_suppression_db=campaign.si_suppression_db,
                )
                n += 1
    return n


def _arm(elapsed_s: float, trials: int) -> dict:
    return {
        "elapsed_s": round(elapsed_s, 4),
        "trials": trials,
        "trials_per_sec": round(trials / elapsed_s, 2) if elapsed_s > 0 else None,
    }


ARRAYFACTOR_ELEMENTS = 1024
ARRAYFACTOR_ANGLES = 181
ARRAYFACTOR_FREQUENCY_HZ = 18_500.0
ARRAYFACTOR_MIN_SPEEDUP = 50.0
"""Floor on batched-over-loop array-factor speedup at the full
benchmark size (the E21 perf gate); `main` exits non-zero below it."""


def run_arrayfactor_bench(
    num_elements: int = ARRAYFACTOR_ELEMENTS,
    num_angles: int = ARRAYFACTOR_ANGLES,
    repeats: int = 5,
) -> dict:
    """The array-factor arm: per-pair loop vs the batched kernel.

    Scores a monostatic pattern sweep (``num_angles`` angles) of a
    ``num_elements``-element Van Atta on both paths. One "trial" is
    one complex field-point evaluation, so ``trials_per_sec`` is
    directly comparable across record generations, and the batched arm
    is averaged over ``repeats`` sweeps (it is far too fast to time
    once). Includes a batched-vs-loop parity verdict (<= 1e-9 per
    element) mirroring the campaign arms' bit-identity checks.
    """
    array = VanAttaArray.uniform(
        num_elements, frequency_hz=ARRAYFACTOR_FREQUENCY_HZ, sound_speed=1500.0
    )
    thetas = np.linspace(-60.0, 60.0, num_angles)
    engine = ArrayFactorEngine.from_linear(array)
    engine.monostatic_batch(ARRAYFACTOR_FREQUENCY_HZ, thetas)  # warm

    t0 = time.perf_counter()
    for _ in range(repeats):
        batched = engine.monostatic_batch(ARRAYFACTOR_FREQUENCY_HZ, thetas)
    batched_arm = _arm(time.perf_counter() - t0, num_angles * repeats)

    t0 = time.perf_counter()
    looped = np.array(
        [
            reference_response(
                array, ARRAYFACTOR_FREQUENCY_HZ, float(t), float(t), 1500.0
            )
            for t in thetas
        ]
    )
    loop_arm = _arm(time.perf_counter() - t0, num_angles)

    for arm in (batched_arm, loop_arm):
        arm["elements"] = num_elements
        arm["angles"] = num_angles
    batched_rate = batched_arm["trials_per_sec"] or 0.0
    loop_rate = loop_arm["trials_per_sec"] or 1e-9
    parity = bool(
        np.abs(batched - looped).max() <= 1e-9 * max(num_elements, 1)
    )
    return {
        "arrayfactor": batched_arm,
        "arrayfactor_loop": loop_arm,
        "arrayfactor_speedup": round(batched_rate / loop_rate, 2),
        "arrayfactor_parity": parity,
    }


LINT_WARM_REPEATS = 3


def run_lint_warm_bench(
    target: Optional[Path] = None, repeats: int = LINT_WARM_REPEATS
) -> dict:
    """The ``lint_warm`` arm: warm-cache full-tree three-engine lint.

    Primes the units/shapes/effects incremental caches in a throwaway
    directory, then times ``repeats`` fully-warm runs over ``target``
    (default ``src/repro``). One "trial" is one file served per run, so
    ``trials_per_sec`` is files/sec and comparable across record
    generations. This guards the warm path itself: a cache-key or
    dependent-closure bug that forces spurious re-analysis shows up
    here as a throughput collapse long before anyone notices CI
    slowing down.
    """
    import tempfile

    from repro.analysis import lint_paths

    if target is None:
        target = REPO_ROOT / "src" / "repro"
    with tempfile.TemporaryDirectory() as tmp:
        cache = Path(tmp) / ".vablint_units_cache.json"
        lint_paths([target], units=True, units_cache=cache)  # prime
        t0 = time.perf_counter()
        for _ in range(repeats):
            report = lint_paths([target], units=True, units_cache=cache)
        arm = _arm(time.perf_counter() - t0, report.files * repeats)
    arm["files"] = report.files
    arm["repeats"] = repeats
    reused = sum(
        stats["reused"]
        for stats in (report.units_stats, report.shapes_stats,
                      report.effects_stats)
        if stats is not None
    )
    # 3 engines x files on a healthy warm run; anything less means the
    # caches are not actually serving the tree.
    arm["cache_hits_per_run"] = reused
    return arm


def run_bench(
    trials_per_point: int = 25,
    ranges_m: Optional[List[float]] = None,
    workers: int = 4,
    seed: int = 2023,
    bench_name: str = "BENCH_1",
    arrayfactor_elements: int = ARRAYFACTOR_ELEMENTS,
    arrayfactor_angles: int = ARRAYFACTOR_ANGLES,
) -> dict:
    """Run all campaign arms plus the array-factor arm; return the record."""
    if ranges_m is None:
        ranges_m = list(DEFAULT_RANGES_M)
    scenarios = sweep_range(Scenario.river(), ranges_m)
    campaign = TrialCampaign(trials_per_point=trials_per_point, seed=seed)

    # Warm imports / BLAS / code paths so no arm pays first-call costs.
    run_campaign(scenarios[:1], TrialCampaign(trials_per_point=2, seed=seed))
    run_baseline(scenarios[:1], TrialCampaign(trials_per_point=2, seed=seed))

    t0 = time.perf_counter()
    n_base = run_baseline(scenarios, campaign)
    baseline = _arm(time.perf_counter() - t0, n_base)

    # Per-trial fallback arm: the cached engine with the batched path
    # pinned off — the reference both for the batched speedup and for
    # the batched == per-trial bit-identity gate.
    fallback_campaign = dataclasses.replace(campaign, engine="per-trial")
    cache.clear_channel_cache()
    noisegen.clear_noise_cache()
    run_campaign(scenarios[:1], dataclasses.replace(
        fallback_campaign, trials_per_point=2))
    t0 = time.perf_counter()
    fallback = run_campaign(
        scenarios, fallback_campaign, label="bench-fallback"
    )
    fallback_arm = _arm(time.perf_counter() - t0, fallback.total_trials)

    cache.clear_channel_cache()
    noisegen.clear_noise_cache()
    serial_timings = StageTimings()
    serial_metrics = MetricsRegistry()
    t0 = time.perf_counter()
    serial = run_campaign_parallel(
        scenarios, campaign, label="bench-serial", workers=1,
        timings=serial_timings, metrics=serial_metrics,
    )
    serial_arm = _arm(time.perf_counter() - t0, serial.total_trials)

    # Steady-state parallel throughput: fork and warm the workers on a
    # tiny campaign first so the timed run measures the engine, not
    # process startup (the serial arms got the same treatment above).
    with ProcessPoolExecutor(max_workers=workers) as pool:
        run_campaign_parallel(
            scenarios[:1], TrialCampaign(trials_per_point=2, seed=seed),
            workers=workers, pool=pool,
        )
        t0 = time.perf_counter()
        parallel = run_campaign_parallel(
            scenarios, campaign, label="bench-parallel", workers=workers,
            pool=pool,
        )
        parallel_arm = _arm(time.perf_counter() - t0, parallel.total_trials)
    parallel_arm["workers"] = workers

    arrayfactor = run_arrayfactor_bench(
        num_elements=arrayfactor_elements, num_angles=arrayfactor_angles
    )

    identical = serial.points == parallel.points
    batched_identical = serial.points == fallback.points
    base_rate = baseline["trials_per_sec"] or 1e-9
    fallback_rate = fallback_arm["trials_per_sec"] or 1e-9
    metrics = serial_metrics.as_dict()
    counters = metrics["counters"]
    return {
        "bench": bench_name,
        "name": "monte-carlo-campaign-engine",
        "batched_engine_version": BATCHED_ENGINE_VERSION,
        "fastfield_engine_version": FASTFIELD_ENGINE_VERSION,
        "config": {
            "trials_per_point": trials_per_point,
            "points": len(ranges_m),
            "ranges_m": ranges_m,
            "workers": workers,
            "seed": seed,
            "scenario": "river",
            # Probe mode is part of the measurement conditions: the
            # runtime invariant probes ride the hot path, so the perf
            # trajectory records what they were set to.
            "probes": probe_mode(),
        },
        "seed_baseline": baseline,
        "serial_fallback": fallback_arm,
        "optimized_serial": serial_arm,
        "optimized_parallel": parallel_arm,
        "arrayfactor": arrayfactor["arrayfactor"],
        "arrayfactor_loop": arrayfactor["arrayfactor_loop"],
        "arrayfactor_parity": arrayfactor["arrayfactor_parity"],
        "speedup": {
            "arrayfactor_over_loop": arrayfactor["arrayfactor_speedup"],
            "serial_over_baseline": round(
                (serial_arm["trials_per_sec"] or 0.0) / base_rate, 2
            ),
            "parallel_over_baseline": round(
                (parallel_arm["trials_per_sec"] or 0.0) / base_rate, 2
            ),
            "batched_over_fallback": round(
                (serial_arm["trials_per_sec"] or 0.0) / fallback_rate, 2
            ),
        },
        "stage_timings": serial_timings.as_dict(),
        "metrics": metrics,
        "cache": {
            "hits": counters.get("repro.sim.cache.hits", 0),
            "misses": counters.get("repro.sim.cache.misses", 0),
            "evictions": counters.get("repro.sim.cache.evictions", 0),
        },
        "parallel_bit_identical": identical,
        "batched_bit_identical": batched_identical,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--trials", type=int, default=25,
                        help="trials per operating point (default 25)")
    parser.add_argument("--points", type=int, default=len(DEFAULT_RANGES_M),
                        help="number of range points (default 6)")
    parser.add_argument("--workers", type=int, default=4,
                        help="parallel arm worker processes (default 4)")
    parser.add_argument("--seed", type=int, default=2023,
                        help="campaign master seed (default 2023)")
    parser.add_argument("--out", type=Path, default=None,
                        help="output JSON path (default: the next free "
                             "BENCH_<n>.json at the repo root)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny-N sanity run; prints but does not write")
    parser.add_argument("--allow-dirty-lint", action="store_true",
                        dest="allow_dirty_lint",
                        help="record the benchmark even if vablint reports "
                             "findings on src/repro (discouraged)")
    args = parser.parse_args(argv)
    if args.trials < 1:
        parser.error("--trials must be >= 1")
    if args.points < 1:
        parser.error("--points must be >= 1")
    if args.workers < 1:
        parser.error("--workers must be >= 1")
    if args.out is None:
        args.out = next_bench_path(REPO_ROOT)

    lint_record = None
    if not args.smoke:
        lint_record = lint_gate(args.allow_dirty_lint)
        if lint_record is None:
            print(
                "ERROR: refusing to record a benchmark from a dirty-lint "
                "tree.\nRun `python tools/vablint.py src/repro` and fix the "
                "findings (or pass --allow-dirty-lint to override).",
                file=sys.stderr,
            )
            return 1

    if args.smoke:
        record = run_bench(trials_per_point=3, ranges_m=[50.0, 330.0],
                           workers=2, seed=args.seed, bench_name="BENCH_smoke",
                           arrayfactor_elements=128, arrayfactor_angles=37)
    else:
        ranges = list(np.interp(
            np.linspace(0, len(DEFAULT_RANGES_M) - 1, args.points),
            np.arange(len(DEFAULT_RANGES_M)), DEFAULT_RANGES_M,
        )) if args.points != len(DEFAULT_RANGES_M) else list(DEFAULT_RANGES_M)
        record = run_bench(trials_per_point=args.trials, ranges_m=ranges,
                           workers=args.workers, seed=args.seed,
                           bench_name=args.out.stem)

    # The warm-lint arm rides every record (smoke included): it times
    # the three-engine lint served entirely from warm incremental
    # caches, so bench_compare can alert when the warm path degrades.
    record["lint_warm"] = run_lint_warm_bench()

    if lint_record is not None:
        record["lint"] = lint_record
    print(json.dumps(record, indent=2))
    if not args.smoke:
        args.out.write_text(json.dumps(record, indent=2) + "\n")
        print(f"wrote {args.out}")
    if not record["parallel_bit_identical"]:
        print("ERROR: parallel campaign diverged from serial", file=sys.stderr)
        return 1
    if not record["batched_bit_identical"]:
        print(
            "ERROR: batched campaign diverged from the per-trial fallback",
            file=sys.stderr,
        )
        return 1
    if not record["arrayfactor_parity"]:
        print(
            "ERROR: batched array factor diverged from the per-pair loop",
            file=sys.stderr,
        )
        return 1
    if (not args.smoke
            and record["speedup"]["arrayfactor_over_loop"]
            < ARRAYFACTOR_MIN_SPEEDUP):
        print(
            "ERROR: array-factor speedup "
            f"{record['speedup']['arrayfactor_over_loop']:.1f}x below the "
            f"{ARRAYFACTOR_MIN_SPEEDUP:.0f}x floor",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
