#!/usr/bin/env python
"""vablint — determinism & physics-invariant linter for the VAB tree.

Checks the project-specific invariants (``VAB001``..``VAB005``: RNG
threading, unit-suffix discipline, wall-clock hygiene, typed public
API) over any set of files or directories. See ``repro.analysis`` for
the framework and ``--catalogue`` for the rules.

Usage::

    python tools/vablint.py src/repro            # lint the library
    python tools/vablint.py --json src/repro     # CI / machine output
    python tools/vablint.py --select VAB001 src  # one rule only
    python tools/vablint.py --fingerprint src/repro

Exit codes: 0 clean, 1 rule findings, 2 unusable input (bad arguments,
missing paths, files that fail to parse).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis import (  # noqa: E402
    EXIT_ERROR,
    lint_paths,
    render_catalogue,
    render_json,
    render_text,
    tree_fingerprint,
)


def _rule_list(raw: Optional[str]) -> Optional[List[str]]:
    """Parse a comma-separated rule-id list argument."""
    if raw is None:
        return None
    return [part.strip().upper() for part in raw.split(",") if part.strip()]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="vablint", description=__doc__.split("\n")[0]
    )
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to lint "
                             "(default: src/repro)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the machine-readable JSON report")
    parser.add_argument("--select", default=None, metavar="RULES",
                        help="comma-separated rule ids to run exclusively")
    parser.add_argument("--disable", default=None, metavar="RULES",
                        help="comma-separated rule ids to skip")
    parser.add_argument("--catalogue", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--fingerprint", action="store_true",
                        help="print the lint fingerprint JSON of the tree "
                             "and exit (0 clean / 1 dirty)")
    args = parser.parse_args(argv)

    if args.catalogue:
        print(render_catalogue())
        return 0

    paths = args.paths or ["src/repro"]
    try:
        if args.fingerprint:
            record = tree_fingerprint(paths)
            print(json.dumps(record, indent=2))
            return 0 if record["clean"] else 1
        report = lint_paths(
            paths, select=_rule_list(args.select), disable=_rule_list(args.disable)
        )
    except FileNotFoundError as exc:
        print(f"vablint: {exc}", file=sys.stderr)
        return EXIT_ERROR
    except KeyError as exc:
        print(f"vablint: {exc.args[0]}", file=sys.stderr)
        return EXIT_ERROR

    output = render_json(report) if args.as_json else render_text(report)
    sys.stdout.write(output)
    return report.exit_code


if __name__ == "__main__":
    raise SystemExit(main())
