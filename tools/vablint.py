#!/usr/bin/env python
"""vablint — determinism & physics-invariant linter for the VAB tree.

Checks the project-specific invariants (``VAB001``..``VAB005``: RNG
threading, unit-suffix discipline, wall-clock hygiene, typed public
API) over any set of files or directories; ``--units`` adds the
interprocedural dataflow rules: dimensional analysis
(``VAB006``..``VAB010``: dB-domain products, dB/linear mixing, Hz vs
rad/s, m vs km, call-site unit conflicts) and shape/dtype analysis
(``VAB011``..``VAB016``: silent broadcasts, batch-collapsing
reductions, complex->real downcasts, shared-array mutation, unordered
accumulation, shape-contract violations) and effect/purity analysis
(``VAB017``..``VAB022``: hidden cache inputs, cache-hit divergence,
worker RNG indiscipline, unpicklable submissions, version-stamp
completeness, host-dependent results). See ``repro.analysis`` for the
framework and ``--catalogue`` for the rules.

Usage::

    python tools/vablint.py src/repro            # lint the library
    python tools/vablint.py --json src/repro     # CI / machine output
    python tools/vablint.py --select VAB001 src  # one rule only
    python tools/vablint.py --units src/repro    # + dataflow engines
    python tools/vablint.py --changed main src   # only files touched vs main
    python tools/vablint.py --units --baseline lint_baseline.json src/repro
    python tools/vablint.py --fingerprint src/repro

Exit codes: 0 clean, 1 rule findings, 2 unusable input (bad arguments,
missing paths, files that fail to parse).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis import (  # noqa: E402
    EXIT_ERROR,
    render_catalogue,
    tree_fingerprint,
)
from repro.analysis.frontend import (  # noqa: E402
    add_lint_flags,
    rule_list,
    run_lint,
)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="vablint", description=__doc__.split("\n")[0]
    )
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to lint "
                             "(default: src/repro)")
    add_lint_flags(parser)
    args = parser.parse_args(argv)

    if args.catalogue:
        print(render_catalogue())
        return 0

    paths = args.paths or ["src/repro"]
    if args.fingerprint:
        try:
            record = tree_fingerprint(paths)
        except FileNotFoundError as exc:
            print(f"vablint: {exc}", file=sys.stderr)
            return EXIT_ERROR
        print(json.dumps(record, indent=2))
        return 0 if record["clean"] else 1

    return run_lint(
        paths,
        select=rule_list(args.select),
        disable=rule_list(args.disable),
        exclude=args.exclude,
        jobs=args.jobs,
        changed=args.changed,
        units=args.units,
        units_cache=None if args.no_units_cache else args.units_cache,
        baseline=args.baseline,
        update_baseline=args.update_baseline,
        as_json=args.as_json,
        stats=args.stats,
        sarif=args.sarif,
    )


if __name__ == "__main__":
    raise SystemExit(main())
