"""PHY walkthrough: watch one frame travel the whole chain, stage by stage.

Builds a frame, turns it into the node's switch waveform, pushes the
reader's carrier through the multipath channel, reflects it off the Van
Atta array, brings it home, and then runs each receiver stage by hand —
printing what every block sees. Useful for understanding the DSP before
modifying it.

Run:  python examples/phy_walkthrough.py
"""

import numpy as np

from repro.core import Scenario
from repro.dsp.metrics import power
from repro.phy.frame import FrameConfig, build_frame, parse_frame
from repro.phy.preamble import preamble_chips
from repro.phy.receiver import ReaderReceiver
from repro.sim.engine import IDLE_CHIPS_BEFORE
from repro.vanatta.node import VanAttaNode


def db(x: float) -> float:
    return 10.0 * np.log10(max(x, 1e-30))


def main() -> None:
    scenario = Scenario.river(range_m=200.0)
    node = VanAttaNode()
    cfg = FrameConfig()
    rng = np.random.default_rng(3)

    # --- node side -------------------------------------------------------
    payload = b"T=13.4C pH=7.9"
    chips = build_frame(node.node_id, payload, cfg)
    print(f"frame: {len(payload)} B payload -> {len(chips)} chips "
          f"({len(cfg.preamble)} preamble + {len(chips) - len(cfg.preamble)} FM0)")

    all_chips = np.concatenate(
        [np.zeros(IDLE_CHIPS_BEFORE, np.int64), chips, np.zeros(8, np.int64)]
    )
    modulation = node.modulation_waveform(
        all_chips, scenario.samples_per_chip, scenario.fs
    )
    print(f"switch waveform: {len(modulation)} samples at {scenario.fs:.0f} Hz, "
          f"levels {modulation.min():.3f}..{modulation.max():.3f}")

    # --- channel, out and back --------------------------------------------
    amplitude = 10.0 ** (scenario.source_level_db / 20.0)
    tx = np.full(len(modulation), amplitude, dtype=complex)
    h = scenario.channel().between(scenario.reader.position, scenario.node.position)
    print(f"channel: {len(h.paths)} path(s), gain {h.total_gain_db():.1f} dB, "
          f"delay {h.direct_path.delay_s * 1e3:.1f} ms one way")

    incident = h.apply(tx, scenario.fs)[: len(modulation)]
    print(f"incident level at node: {db(power(incident)):.1f} dB re 1 uPa")

    reflected = node.reflect(
        incident, modulation, scenario.carrier_hz,
        scenario.incidence_deg, scenario.water.sound_speed,
    )
    received = h.apply(reflected, scenario.fs)[: len(modulation)]
    print(f"backscatter level at reader: {db(power(received - received.mean())):.1f} "
          f"dB re 1 uPa (data component)")

    # --- reader side, stage by stage ------------------------------------------
    leak = amplitude * 10.0 ** (-40.0 / 20.0)
    from repro.dsp.noisegen import colored_noise
    noise = colored_noise(
        len(received), scenario.fs, scenario.noise.psd_db, scenario.carrier_hz, rng
    ) * 10 ** 0.5
    record = received + leak + noise
    print(f"\nraw record power: {db(power(record)):.1f} dB (carrier leak dominates)")

    rx = ReaderReceiver(fs=scenario.fs, chip_rate=scenario.chip_rate, frame_config=cfg)
    centred = rx.suppress_carrier(record)
    print(f"after carrier suppression: {db(power(centred)):.1f} dB")

    detection = rx.find_preamble(centred)
    assert detection is not None, "preamble not found"
    print(f"preamble lock: sample {detection.start_index} "
          f"(true {IDLE_CHIPS_BEFORE * scenario.samples_per_chip}), "
          f"score {detection.score:.2f}, PSL {detection.psl:.1f}")

    soft = rx.slice_chips(centred, detection)
    n_data = len(chips) - len(preamble_chips(cfg.preamble_repeats))
    hard = (soft >= 0).astype(np.int64)[:n_data]
    frame = parse_frame(hard, cfg)
    print(f"sliced {len(soft)} chips; frame CRC "
          f"{'OK' if frame and frame.crc_ok else 'FAIL'}")
    if frame:
        print(f"decoded payload: {frame.payload!r}")


if __name__ == "__main__":
    main()
