"""The river range experiment: BER vs range across node orientations.

A compact version of the paper's headline evaluation (and of benchmark
E3): moor the node at increasing distances and rotations, run Monte-Carlo
frame exchanges at each point, and find where the BER-1e-3 envelope ends.

Run:  python examples/river_range_experiment.py
"""

from repro.core import Scenario, default_vab_budget
from repro.sim.sweep import sweep_range
from repro.sim.trials import TrialCampaign, run_campaign

RANGES = [50.0, 150.0, 250.0, 330.0, 420.0]
ORIENTATIONS = [0.0, 30.0, 60.0]


def main() -> None:
    print(f"{'orient':>6} {'range':>6} {'ber':>8} {'frames':>7} {'snr_db':>7}")
    for offset in ORIENTATIONS:
        scenarios = [
            s.with_node_rotation(offset)
            for s in sweep_range(Scenario.river(), RANGES)
        ]
        campaign = TrialCampaign(trials_per_point=8, seed=int(offset) + 1)
        result = run_campaign(scenarios, campaign, label=f"{offset:.0f} deg")
        for p in result.points:
            print(
                f"{offset:>6.0f} {p.range_m:>6.0f} {p.ber:>8.4f} "
                f"{p.frame_success_rate:>7.2f} {p.mean_snr_db:>7.1f}"
            )
        print(
            f"   -> orientation {offset:.0f} deg: BER<=1e-3 out to "
            f"~{result.max_range_at_ber(1e-3):.0f} m"
        )

    budget = default_vab_budget(Scenario.river())
    print(f"\nanalytic budget cross-check: {budget.max_range_m(1e-3):.0f} m at BER 1e-3")


if __name__ == "__main__":
    main()
