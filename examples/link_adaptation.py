"""Link adaptation in practice: one reader, nodes at many ranges.

For each node the reader consults its link budget and picks the PHY mode
(chip rate + FEC) that maximises goodput while keeping retries sane —
then the schedule shows what the network actually delivers.

Run:  python examples/link_adaptation.py
"""

from repro.core import Scenario, default_vab_budget
from repro.link.adaptive import (
    DEFAULT_MODES,
    adaptive_goodput_bps,
    frame_delivery_probability,
    mode_goodput_bps,
    select_mode,
)

NODE_RANGES = [40.0, 120.0, 220.0, 320.0, 420.0]


def main() -> None:
    budget = default_vab_budget(Scenario.river())

    print(f"{'node@range':>12} {'chosen mode':>14} {'p(frame)':>9} "
          f"{'goodput':>9}")
    total = 0.0
    for r in NODE_RANGES:
        mode = select_mode(budget, r)
        if mode is None:
            print(f"{r:>10.0f} m {'(unreachable)':>14}")
            continue
        p = frame_delivery_probability(budget, mode, r)
        goodput = adaptive_goodput_bps(budget, r)
        total += goodput
        print(f"{r:>10.0f} m {mode.name:>14} {p:>9.3f} {goodput:>7.1f} b/s")

    print(f"\nnetwork aggregate (round-robin): "
          f"{total / len(NODE_RANGES):.1f} b/s mean per node")

    # What a fixed-rate deployment would have lost:
    print("\nfixed-mode comparison at the farthest reachable node (420 m):")
    for mode in DEFAULT_MODES:
        p = frame_delivery_probability(budget, mode, 420.0)
        g = mode_goodput_bps(budget, mode, 420.0) if p >= 0.5 else 0.0
        print(f"  {mode.name:>12}: {g:6.1f} b/s (p(frame) {p:.3f})")


if __name__ == "__main__":
    main()
