"""Receiver features under multipath: DFE, timing search, rake.

Builds a two-path channel by hand (main arrival plus a strong echo) and
shows what each receiver feature contributes — the E16 experiment at
workbench scale.

Run:  python examples/multipath_receiver.py
"""

import numpy as np

from repro.dsp.noisegen import white_noise
from repro.phy.frame import build_frame
from repro.phy.rake import estimate_channel
from repro.phy.receiver import ReaderReceiver
from repro.vanatta.switching import ModulationSwitch, chips_to_waveform

FS = 16_000.0
CHIP_RATE = 2_000.0
SPS = int(FS / CHIP_RATE)


def make_record(echo_gain, echo_delay_samples, noise_power, seed=3):
    """Reader-side record: frame + delayed echo + leak + noise."""
    chips = np.concatenate(
        [np.zeros(20, np.int64), build_frame(9, b"multipath demo"), np.zeros(6, np.int64)]
    )
    mod = chips_to_waveform(chips, SPS, ModulationSwitch())
    base = mod.astype(complex)
    record = base.copy()
    record[echo_delay_samples:] += echo_gain * base[:-echo_delay_samples]
    record += 25.0  # carrier leak
    record += white_noise(len(record), noise_power, np.random.default_rng(seed))
    return record


def describe(name, result):
    status = "OK " if result.success else "FAIL"
    print(f"  {name:<28} {status} eye SNR {result.snr_db:6.1f} dB")


def main() -> None:
    # A hostile channel: -1.9 dB echo two chips behind the main arrival.
    record = make_record(echo_gain=-0.8 + 0.0j, echo_delay_samples=32,
                         noise_power=0.02)

    print("channel estimate from the preamble:")
    probe = ReaderReceiver(fs=FS, chip_rate=CHIP_RATE)
    centred = probe.suppress_carrier(record)
    det = probe.find_preamble(centred)
    est = estimate_channel(centred, det, SPS, max_taps=48)
    for k in np.flatnonzero(est.taps):
        tap = est.taps[k]
        print(f"  tap @ {k:2d} samples ({k / SPS:.2f} chips): "
              f"|h| = {abs(tap):.3f}, phase {np.angle(tap):+.2f} rad")

    print("\nreceiver variants on the same record:")
    describe("plain slicer", ReaderReceiver(fs=FS, chip_rate=CHIP_RATE)
             .demodulate(record))
    describe("rake (MRC)", ReaderReceiver(fs=FS, chip_rate=CHIP_RATE,
                                          rake_taps=48).demodulate(record))
    describe("DFE", ReaderReceiver(fs=FS, chip_rate=CHIP_RATE,
                                   equalizer_taps=48).demodulate(record))
    describe("DFE + timing search",
             ReaderReceiver(fs=FS, chip_rate=CHIP_RATE, equalizer_taps=48,
                            timing_search=4).demodulate(record))

    print("\nlesson: for unspread OOK the echo is inter-chip interference —")
    print("decision feedback cancels it; rake alone only re-collects energy.")


if __name__ == "__main__":
    main()
