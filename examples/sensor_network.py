"""A coastal sensor network: inventorying many battery-free nodes.

Eight VAB nodes moored across a river reach, one reader: the link layer
runs slotted-ALOHA inventory rounds, with per-node delivery probabilities
taken from each node's own link budget. Shows how MAC overhead and the
acoustic round trip set the network read rate.

Run:  python examples/sensor_network.py
"""

from repro.core import Scenario, default_vab_budget
from repro.link.mac import SlottedAlohaInventory, throughput_efficiency
from repro.link.session import FrameTiming, QuerySession

PAYLOAD_BYTES = 8


def frame_delivery_probability(range_m: float) -> float:
    """Per-attempt frame delivery probability from the link budget."""
    budget = default_vab_budget(Scenario.river(range_m=range_m))
    frame_bits = FrameTiming().frame_config.frame_bits(PAYLOAD_BYTES)
    return (1.0 - budget.ber(range_m)) ** frame_bits


def main() -> None:
    # Nodes moored every ~40 m out to 330 m.
    node_ranges = {node_id: 50.0 + 40.0 * (node_id - 1) for node_id in range(1, 9)}
    probs = {n: frame_delivery_probability(r) for n, r in node_ranges.items()}

    print("node  range_m  p(frame)")
    for n, r in node_ranges.items():
        print(f"{n:>4}  {r:>7.0f}  {probs[n]:.3f}")

    inventory = SlottedAlohaInventory(seed=5, payload_bytes=PAYLOAD_BYTES)
    result = inventory.run(node_ranges, delivery_probability=probs)

    print(f"\ninventoried {len(result.inventoried)}/8 nodes "
          f"in {result.rounds} rounds, {result.elapsed_s:.2f} s")
    print(f"read order : {result.inventoried}")
    print(f"efficiency : {throughput_efficiency(result):.2f} reads/attempt")
    print(f"collisions : {result.stats.collisions}, idle slots: {result.stats.idle_slots}")

    # Steady-state monitoring: how often can we poll the farthest node?
    far = max(node_ranges.values())
    session = QuerySession(
        payload_bytes=PAYLOAD_BYTES,
        frame_success_probability=probs[max(node_ranges, key=node_ranges.get)],
    )
    print(f"\nfarthest node ({far:.0f} m): goodput "
          f"{session.goodput_bps(far):.1f} bps, "
          f"round trip {session.timing.turnaround_s(far) * 1e3:.0f} ms")


if __name__ == "__main__":
    main()
