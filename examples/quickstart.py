"""Quickstart: simulate a VAB link in three lines, then look deeper.

Run:  python examples/quickstart.py
"""

from repro.core import Scenario, default_vab_budget, simulate_link


def main() -> None:
    # A node moored 100 m down-range of the reader in a calm river.
    scenario = Scenario.river(range_m=100.0)

    # Monte-Carlo waveform simulation: 10 complete frame exchanges.
    report = simulate_link(scenario, trials=10, seed=7)
    print(f"range            : {report.range_m:.0f} m")
    print(f"measured BER     : {report.ber:.2e}")
    print(f"frames delivered : {report.frame_success_rate:.0%}")
    print(f"predicted SNR    : {report.predicted_snr_db:.1f} dB")

    # The analytic budget answers design questions instantly.
    budget = default_vab_budget(scenario)
    print(f"max range @1e-3  : {budget.max_range_m(1e-3):.0f} m")
    print(f"margin at 100 m  : {budget.margin_db(100.0):.1f} dB")

    # How the budget decomposes (the sonar equation, round trip):
    print("\nlink budget at 100 m:")
    print(f"  source level      {budget.scenario.source_level_db:7.1f} dB re 1 uPa @ 1 m")
    print(f"  one-way loss      {-budget.one_way_loss_db(100.0):7.1f} dB (x2 round trip)")
    print(f"  reflection gain   {budget.reflection_gain_db():7.1f} dB (array + modulation)")
    print(f"  noise in band     {budget.noise_level_in_band_db():7.1f} dB re 1 uPa")
    print(f"  processing gain   {budget.processing_gain_db():7.1f} dB")
    print(f"  system loss       {-budget.system_loss_db:7.1f} dB")
    print(f"  => SNR            {budget.snr_db(100.0):7.1f} dB")


if __name__ == "__main__":
    main()
