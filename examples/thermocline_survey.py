"""Seasonal deployment survey: will the network survive summer?

Uses the ray-tracing substrate to map which mooring spots a surface
reader can geometrically reach under a winter (well-mixed) and a summer
(stratified) sound-speed profile — the E15 experiment as a deployment
planning tool.

Run:  python examples/thermocline_survey.py
"""

from repro.acoustics.raytrace import find_eigenray, in_shadow_zone, trace_ray
from repro.acoustics.ssp import SoundSpeedProfile

READER_DEPTH = 3.0
BOTTOM = 200.0


def profile_summary(name, ssp):
    print(f"{name}:")
    for z in (0.0, 10.0, 30.0, 100.0):
        print(f"  c({z:5.1f} m) = {ssp.speed_at(z):7.1f} m/s")


def reachability_map(ssp):
    ranges = [300.0, 600.0, 900.0, 1200.0, 1500.0]
    depths = [6.0, 30.0, 60.0, 120.0]
    print("      " + "".join(f"{r:>8.0f}" for r in ranges) + "   (range, m)")
    for z in depths:
        cells = []
        for r in ranges:
            dark = in_shadow_zone(ssp, READER_DEPTH, z, r, bottom_depth_m=BOTTOM)
            cells.append("   dark " if dark else "     ok ")
        print(f"{z:5.0f} " + "".join(cells))


def ray_fan_demo(ssp):
    print("\nray fan from the reader (summer profile):")
    for angle in (-2.0, 0.0, 2.0, 5.0):
        ray = trace_ray(ssp, READER_DEPTH, angle, 1500.0, bottom_depth_m=BOTTOM)
        end_depth = ray.z_m[-1]
        print(
            f"  launch {angle:+5.1f} deg -> ends at {end_depth:6.1f} m depth, "
            f"{ray.surface_hits} surface / {ray.bottom_hits} bottom hits"
        )


def main() -> None:
    winter = SoundSpeedProfile.isothermal(1480.0, max_depth_m=BOTTOM)
    summer = SoundSpeedProfile.summer_thermocline(max_depth_m=BOTTOM)

    profile_summary("winter (well mixed)", winter)
    profile_summary("summer (stratified)", summer)

    print("\nwinter reachability (node depth rows):")
    reachability_map(winter)
    print("\nsummer reachability:")
    reachability_map(summer)

    ray_fan_demo(summer)

    # A concrete mooring decision.
    eigen = find_eigenray(summer, READER_DEPTH, 30.0, 900.0, bottom_depth_m=BOTTOM)
    if eigen is not None:
        print(
            f"\nsummer, node at 30 m / 900 m: reachable via launch "
            f"{eigen.launch_angle_deg:+.1f} deg, travel {eigen.travel_time_s:.2f} s"
        )
    else:
        print("\nsummer, node at 30 m / 900 m: in the shadow zone — re-moor it")


if __name__ == "__main__":
    main()
