"""Ocean deployment study: sea state, Doppler, and the energy story.

The coastal-monitoring application from the paper's introduction: a
battery-free sensor moored offshore, interrogated by a reader hung off a
boat. This example walks the two questions a deployment engineer asks:

1. How far can I read the node at today's sea state?
2. Will the node stay powered, and at what duty cycle?

Run:  python examples/ocean_deployment.py
"""

from repro.core import Scenario, default_vab_budget
from repro.sim.trials import TrialCampaign
from repro.vanatta.node import VanAttaNode


def communication_study() -> None:
    print("== communication range vs sea state ==")
    for sea_state in (1, 2, 3, 4, 5):
        budget = default_vab_budget(Scenario.ocean(sea_state=sea_state))
        print(
            f"  sea state {sea_state}: noise {budget.ambient_noise_db():5.1f} dB, "
            f"max range {budget.max_range_m(1e-3):5.0f} m"
        )

    print("\n== waveform check at 150 m, sea state 3 (waves + drift Doppler) ==")
    scenario = Scenario.ocean(range_m=150.0, sea_state=3)
    point = TrialCampaign(trials_per_point=10, seed=11).run_point(scenario)
    print(
        f"  BER {point.ber:.2e}, frames {point.frame_success_rate:.0%}, "
        f"eye SNR {point.mean_snr_db:.1f} dB over {point.trials} trials"
    )


def energy_study() -> None:
    print("\n== node energy: harvest vs duty cycle ==")
    node = VanAttaNode()
    scenario = Scenario.ocean(sea_state=2)
    budget = default_vab_budget(scenario)
    for range_m in (5.0, 10.0, 20.0, 50.0):
        incident = budget.incident_level_db(range_m)
        harvested = node.harvested_power_w(incident, scenario.carrier_hz)
        consumed = node.average_power_w(1000.0)
        status = "self-sustaining" if harvested >= consumed else "storage-assisted"
        print(
            f"  {range_m:5.1f} m: incident {incident:5.1f} dB, "
            f"harvested {harvested * 1e6:7.3f} uW vs {consumed * 1e6:.3f} uW "
            f"-> {status}"
        )
    # Storage-assisted operation: charge between interrogations.
    incident = budget.incident_level_db(10.0)
    t = node.harvester.charge_time_s(incident, scenario.carrier_hz, 2.2)
    print(f"  storage cap charge time at 10 m: {t:.0f} s to 2.2 V")


def main() -> None:
    communication_study()
    energy_study()


if __name__ == "__main__":
    main()
